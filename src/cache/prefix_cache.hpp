#pragma once
// Prompt prefix KV cache (paper §2 "Prompt KV cache").
//
// Combines the radix tree with block-pool capacity and LRU eviction, and
// keeps the hit accounting the evaluation reports as PHR. The serving
// engine calls lookup() when a request is admitted (pinning the matched
// prefix), admit() after prefill (inserting newly computed blocks), and
// release() when the request completes.
//
// Threading. By default (lock_stripes == 0) the cache is single-threaded
// and lock-free, exactly as the virtual-clock simulator uses it. With
// lock_stripes = S > 0 the cache becomes thread-safe via lock striping:
// prompts are sharded by a hash of their first (root) token block into S
// independent radix trees, each behind its own mutex, with a separate
// accounting mutex guarding the shared stats/clock/pool state. Two
// prompts can only share tree structure below the root if they share
// their entire first block, so same-stripe trees partition the node space
// exactly like one tree whose root children were split by stripe — and
// because every operation stamps a globally unique logical-clock value,
// picking the globally oldest victim across stripes (RadixTree::lru_age)
// reproduces the single-tree LRU eviction order exactly. The striped
// cache is therefore behaviorally identical to the unstriped one under
// any serialized operation sequence (pinned by tests/cache), which is
// what lets the threaded fleet runtime stay bit-identical to the
// virtual-clock oracle. Lock order: stripe mutexes in ascending index
// first, then the accounting mutex; never the reverse.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "cache/block_pool.hpp"
#include "cache/radix_tree.hpp"
#include "obs/trace.hpp"

namespace llmq::cache {

struct CacheConfig {
  std::size_t block_size = 16;      // tokens per KV block (vLLM default)
  std::size_t capacity_blocks = 0;  // GPU-tier capacity; 0 = unlimited
  bool enabled = true;              // false = the paper's "No Cache" arm
  /// 0 = single-threaded (no locks, one tree — the simulator default).
  /// S > 0 = thread-safe with S lock stripes / per-stripe trees.
  std::size_t lock_stripes = 0;
  /// Tier count: 1 = flat GPU-only pool (the pre-tier behavior, bit-
  /// exact), 2 = GPU + host DRAM, 3 = GPU + host + disk. With tiers > 1
  /// GPU pressure demotes cold blocks down instead of destroying them,
  /// and a lower-tier hit is promoted back before the lease pins it
  /// (DESIGN.md §13).
  std::size_t tiers = 1;
  /// Capacity of the host / disk tiers in blocks; 0 = unlimited. Only
  /// read when the corresponding tier exists.
  std::size_t host_capacity_blocks = 0;
  std::size_t disk_capacity_blocks = 0;
};

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hit_tokens = 0;     // tokens served from cache
  std::uint64_t lookup_tokens = 0;  // prompt tokens across lookups
  std::uint64_t inserted_blocks = 0;
  std::uint64_t evicted_blocks = 0;  // destroyed outright (bottom tier)
  /// Tier traffic (always 0 on a flat cache): blocks pushed down one
  /// tier under GPU/host pressure, and blocks pulled back to GPU —
  /// whether priced (lookup hit on a lower tier) or free (prefill
  /// recomputed them on-GPU anyway).
  std::uint64_t demoted_blocks = 0;
  std::uint64_t promoted_blocks = 0;
  double hit_rate() const {
    return lookup_tokens ? static_cast<double>(hit_tokens) /
                               static_cast<double>(lookup_tokens)
                         : 0.0;
  }

  /// Field-wise accumulate / delta. Every consumer that needs "stats over
  /// an interval" (per-session deltas, fleet aggregation) MUST go through
  /// these instead of hand-listing fields: a counter added to CacheStats
  /// but missed here silently vanishes from every derived report, which
  /// is why the definitions carry a sizeof tripwire (prefix_cache.cpp)
  /// and a field-coverage test (tests/cache).
  CacheStats& operator+=(const CacheStats& o);
  CacheStats& operator-=(const CacheStats& o);
};

/// a - b, field-wise — the "stats since `b` was sampled" delta.
inline CacheStats operator-(CacheStats a, const CacheStats& b) {
  a -= b;
  return a;
}

/// Handle for an in-flight request's pinned prefix path.
struct CacheLease {
  std::vector<NodeId> path;
  std::size_t cached_tokens = 0;
  /// Stripe the path lives in (always 0 when unstriped). Recorded at
  /// lookup so release/admit relock the right tree without rehashing.
  std::uint32_t stripe = 0;
  /// Blocks this lookup promoted from the host / disk tier back to GPU
  /// (always 0 on a flat cache). The engine prices the transfer into
  /// TTFT before it reuses the prefix — a lower-tier hit is cheaper than
  /// recompute but is not free.
  std::size_t promoted_host_blocks = 0;
  std::size_t promoted_disk_blocks = 0;
};

/// Side-effect-free tier split of a prompt's cached prefix (the router's
/// tier-aware affinity probe): how many matched tokens sit at each tier.
struct TierPeek {
  std::size_t gpu_tokens = 0;
  std::size_t host_tokens = 0;
  std::size_t disk_tokens = 0;
  std::size_t total() const { return gpu_tokens + host_tokens + disk_tokens; }
};

class PrefixCache {
 public:
  explicit PrefixCache(CacheConfig config);

  // Movable (sessions receive their cache by value from the engine), not
  // copyable: a lease's NodeIds are only meaningful against the instance
  // that issued them.
  PrefixCache(PrefixCache&&) = default;
  PrefixCache& operator=(PrefixCache&&) = default;
  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  const CacheConfig& config() const { return config_; }
  /// Snapshot of the hit/eviction counters. By value: with lock striping
  /// the copy is taken under the accounting mutex so concurrent readers
  /// never see a half-updated struct.
  CacheStats stats() const;
  /// Blocks resident across ALL tiers (== the tree's node count).
  std::size_t resident_blocks() const;
  /// Blocks resident in GPU memory only — what engine admission budgets
  /// against. Equal to resident_blocks() on a flat cache.
  std::size_t gpu_resident_blocks() const;
  /// Blocks resident at one tier (0 = GPU, 1 = host, 2 = disk).
  std::size_t tier_resident_blocks(std::uint8_t tier) const;
  /// Blocks currently pinned by outstanding leases (gauge sampling).
  std::size_t pinned_blocks() const;

  /// Bind an event sink (obs/trace.hpp). The cache has no clock of its
  /// own, so the owning session also hands down a pointer to its virtual
  /// clock for event timestamps; both must outlive the cache's use.
  /// nullptr sink (the default) disables emission entirely.
  void set_trace(obs::TraceSink* sink, std::uint32_t replica,
                 const double* clock) {
    trace_ = sink;
    trace_replica_ = replica;
    trace_clock_ = clock;
  }

  /// Longest cached block-aligned prefix of `prompt`; pins the matched
  /// path and counts the hit. Advances the logical clock.
  CacheLease lookup(std::span<const TokenId> prompt);

  /// Re-admission probe for a PREEMPTED request resuming execution: pins
  /// and touches the matched path exactly like lookup(), but counts NO
  /// stats — the request already registered its one lookup (and its hit
  /// credit) at first admission, and hit-rate ratios must stay
  /// exactly-once per request across arbitrary preempt/resume cycles.
  /// The matched tokens are what the cache still covers; the resume's
  /// recompute cost is everything beyond them.
  CacheLease resume_lookup(std::span<const TokenId> prompt);

  /// Read-only probe: tokens of `prompt`'s longest cached block-aligned
  /// prefix, with NO side effects — no LRU touch, no pin, no stats, no
  /// clock advance. This is the router's cache-affinity probe contract: a
  /// replica that merely loses a routing comparison must not have its
  /// recency order or hit accounting perturbed. Always 0 when disabled.
  /// With lock striping the probe takes its stripe's mutex (tree walks
  /// race with concurrent insert/evict otherwise) but still leaves every
  /// counter and recency stamp untouched — transparency is pinned under
  /// concurrent mutation by tests/cache/test_cache_concurrency.cpp.
  std::size_t peek(std::span<const TokenId> prompt) const;

  /// peek() with the matched tokens split by tier — the same no-side-
  /// effect contract, so the router can score a GPU hit above a host hit
  /// above a miss without perturbing any replica it probes. On a flat
  /// cache everything lands in gpu_tokens (total == peek()).
  TierPeek peek_tiers(std::span<const TokenId> prompt) const;

  /// After prefill: insert the prompt's full blocks, evicting LRU blocks
  /// as needed. Under memory pressure only the longest admissible prefix
  /// is kept (prefix-closed property preserved). Re-pins the lease to
  /// cover the full inserted path. Returns blocks newly inserted.
  std::size_t admit(std::span<const TokenId> prompt, CacheLease& lease);

  /// Request finished: unpin its path.
  void release(CacheLease& lease);

  /// Undo one lookup()'s stat side-effects when the looked-up request is
  /// NOT admitted after all (engine deferred it for KV memory and will
  /// look up again): decrements the lookup counters and unpins, so a
  /// request that waits K steps for memory still counts as exactly one
  /// lookup in the stats the hit-rate reports divide. `prompt_tokens`
  /// must be the length passed to the paired lookup(). The LRU touch is
  /// deliberately not undone — the prompt really was seen.
  void cancel_lookup(CacheLease& lease, std::size_t prompt_tokens);

  /// Free up to `n` GPU blocks for the serving engine, which owns the
  /// global KV budget across cached and per-request private blocks.
  /// Flat cache: LRU leaves are destroyed. Tiered cache: the same LRU
  /// victims are demoted to the host tier instead (cascading host->disk
  /// and finally destroying bottom-tier LRU leaves as capacities fill).
  /// Returns GPU blocks actually freed.
  std::size_t evict(std::size_t n);

  /// Insert a migrated prefix (fleet warm-up: a donor replica streamed
  /// these tokens to this cache). Inserts like an admit — new blocks land
  /// GPU-resident, LRU demotion/eviction makes room — but counts NO
  /// lookup or hit stats and pins nothing, so migrated prefixes are
  /// never double-counted as prefix hits; only inserted_blocks grows.
  /// Returns blocks newly inserted.
  std::size_t admit_migrated(std::span<const TokenId> tokens);

  /// Donor side of a fleet prefix migration: the hottest GPU-resident
  /// root-down prefixes (up to roughly `max_blocks` blocks), each pinned
  /// by a lease so donor eviction is deferred until the transfer lands.
  /// The fleet calls end_migration() when it completes (or abandons) the
  /// transfer; until then the blocks stay resident and servable.
  struct MigrationBatch {
    std::vector<tokenizer::TokenSeq> prefixes;  // tokens to stream out
    std::vector<CacheLease> leases;             // donor pins, one per prefix
    std::size_t blocks = 0;  // path blocks covered (ancestors may repeat)
  };
  MigrationBatch begin_migration(std::size_t max_blocks);
  void end_migration(MigrationBatch& batch);

  /// Blocks that a prompt of `n_tokens` would newly occupy beyond
  /// `cached_tokens` (full blocks only).
  std::size_t blocks_needed(std::size_t n_tokens,
                            std::size_t cached_tokens) const;

  /// Property-test self-check: the radix tree's structural invariants
  /// (RadixTree::check_invariants) plus the cache-level accounting that
  /// ties tree, pool, and stats together — resident blocks equal pool
  /// usage and equal inserted minus evicted, and the tree's total pin
  /// count equals the pin edges this cache handed out through leases
  /// (lookup/resume_lookup/admit pin, release/cancel_lookup unpin). The
  /// pin ledger is what makes "no pinned block is ever evicted" a walked
  /// invariant: eviction refuses pinned nodes (RadixTree::remove_node
  /// throws), so a lease whose pins went missing — or a pin left behind
  /// by a preempted request — shows up here as a ledger mismatch. Empty
  /// string when everything holds, else the first violation.
  std::string check_invariants() const;

 private:
  using EventKind = obs::EventKind;

  /// Mutexes live behind a pointer so the cache stays movable (mutexes
  /// are not); null when lock_stripes == 0, making every lock helper a
  /// no-op on the single-threaded path.
  struct LockState {
    explicit LockState(std::size_t stripes) : stripe_mu(stripes) {}
    std::vector<std::mutex> stripe_mu;
    /// Guards stats_, clock_, pool_, outstanding_pins_. Acquired after
    /// any stripe mutexes, never before.
    std::mutex acct_mu;
  };

  std::uint32_t stripe_of(std::span<const TokenId> prompt) const;
  std::unique_lock<std::mutex> lock_stripe(std::uint32_t s) const;
  std::unique_lock<std::mutex> lock_acct() const;
  std::vector<std::unique_lock<std::mutex>> lock_all_stripes() const;

  /// Lease-path vector recycling (pre: acct mutex held, when striped).
  /// Leases carry their path vectors out to callers and bring them back
  /// on release; pooling the buffers makes the steady-state
  /// lookup→admit→release cycle allocation-free once capacities warm up.
  std::vector<NodeId> acquire_path();
  void recycle_path(std::vector<NodeId>&& path);

  bool tiered() const { return config_.tiers > 1; }

  CacheLease pinning_match(RadixTree& tree, std::uint32_t stripe,
                           std::span<const TokenId> prompt);

  // ---- Tier helpers. Pre for all: every stripe mutex + acct held (all
  // tiered mutations take the full lock set: demotion victims and
  // cross-tier rebalancing can touch any stripe). ----

  /// Demote up to `n` GPU-LRU blocks to host (globally oldest across
  /// stripes), then rebalance host/disk to capacity. Returns GPU blocks
  /// freed (fewer when everything left is pinned).
  std::size_t demote_gpu_locked(std::size_t n);
  /// Demote until the GPU pool has `need` free blocks (best effort).
  void make_gpu_room_locked(std::size_t need);
  /// Push host overflow to disk (3-tier) or destroy bottom-tier LRU
  /// leaves so host/disk stay within their capacities.
  void rebalance_lower_tiers_locked();
  /// Destroy up to `n` LRU unpinned leaves of the bottom tier `tier`.
  std::size_t evict_bottom_locked(std::uint8_t tier, std::size_t n);
  /// Promote every lower-tier node of the pinned root-down `path` to
  /// GPU, demoting cold blocks for room. If the pool is pin-saturated,
  /// unpins and drops the non-fitting tail (returns true). `host`/`disk`
  /// receive the blocks promoted from each tier; `cls` tags the
  /// TierPromote event (0 = priced transfer, 1 = recompute refresh).
  bool promote_pinned_path_locked(RadixTree& tree, std::vector<NodeId>& path,
                                  std::size_t& host, std::size_t& disk,
                                  std::uint8_t cls);
  /// Tiered admit(): refresh-promote the matched prefix, then insert the
  /// remaining new blocks GPU-resident.
  std::size_t admit_tiered_locked(RadixTree& tree, std::uint32_t stripe,
                                  std::span<const TokenId> prompt,
                                  CacheLease& lease);
  /// Pre: caller holds lease.stripe's mutex and acct (when striped).
  void release_locked(CacheLease& lease);
  /// Insert + repin half of admit(). Pre: stripe + acct held; `need` caps
  /// new nodes. Returns blocks newly inserted.
  std::size_t admit_insert(RadixTree& tree, std::uint32_t stripe,
                           std::span<const TokenId> prompt, CacheLease& lease,
                           std::size_t need);
  /// Evict up to n blocks picking the globally oldest victim across
  /// stripes. Pre: all stripe mutexes + acct held (when striped).
  std::size_t evict_blocks_locked(std::size_t n);

  /// Emission helper: one branch when tracing is off, no allocation.
  void trace(EventKind kind, std::uint64_t a, std::uint64_t b,
             std::uint64_t c, std::uint8_t cls = 0) const {
    if (!trace_) return;
    trace_->emit({kind, cls, trace_replica_,
                  trace_clock_ ? *trace_clock_ : 0.0, 0, a, b, c});
  }

  CacheConfig config_;
  /// One tree per stripe (exactly one when unstriped). Per-stripe trees —
  /// rather than one tree with striped node locks — keep the hot node
  /// vector free of cross-thread reallocation races by construction.
  std::vector<RadixTree> trees_;
  BlockPool pool_;  // the GPU tier: pool_.used() == GPU-resident blocks
  /// Blocks resident at the host / disk tiers (acct-guarded; both stay 0
  /// on a flat cache).
  std::size_t host_used_ = 0;
  std::size_t disk_used_ = 0;
  CacheStats stats_;
  std::uint64_t clock_ = 0;
  /// Outstanding (lease, node) pin edges — incremented when a lease pins
  /// a path, decremented on release; mirrors the trees' total ref count.
  std::uint64_t outstanding_pins_ = 0;
  /// Retired lease-path buffers awaiting reuse (guarded by acct_mu).
  std::vector<std::vector<NodeId>> path_pool_;
  std::unique_ptr<LockState> locks_;
  obs::TraceSink* trace_ = nullptr;
  std::uint32_t trace_replica_ = 0;
  const double* trace_clock_ = nullptr;
};

}  // namespace llmq::cache
