// BlockPool is header-only; this translation unit anchors the target.
#include "cache/block_pool.hpp"
