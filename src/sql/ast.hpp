#pragma once
// AST for the LLM-query SQL dialect.
//
// Grammar (the shape of every query in the paper's benchmark, Appendix A):
//
//   select    := SELECT item (',' item)* FROM table_ref [WHERE pred]
//   item      := column [AS alias]
//              | LLM '(' string (',' field)* ')' [AS alias]
//              | LLM '(' string ',' '*' ')' [AS alias]
//              | AVG '(' llm_call ')' [AS alias]
//   table_ref := ident [JOIN ident ON ident '=' ident]
//   pred      := atom (AND atom)*
//   atom      := llm_call '=' string
//              | column '<>' NULL
//              | column '=' string

#include <optional>
#include <string>
#include <vector>

namespace llmq::sql {

/// An LLM('prompt', fields...) invocation. `star` means {T.*}: the
/// operator receives every field of the input table (and the reordering
/// planner may permute all of them).
struct LlmCall {
  std::string prompt;
  std::vector<std::string> fields;
  bool star = false;
};

struct SelectItem {
  enum class Kind { Column, Llm, AvgLlm };
  Kind kind = Kind::Column;
  std::string column;  // Kind::Column
  LlmCall llm;         // Kind::Llm / AvgLlm
  std::string alias;   // empty = derive a name
};

struct PredicateAtom {
  enum class Kind { LlmEquals, ColumnNotNull, ColumnEquals };
  Kind kind = Kind::LlmEquals;
  LlmCall llm;          // LlmEquals
  std::string column;   // ColumnNotNull / ColumnEquals
  std::string literal;  // LlmEquals / ColumnEquals
};

struct TableRef {
  std::string table;
  // Optional single equi-join (the reviews-join-metadata pattern).
  std::optional<std::string> join_table;
  std::string left_key;   // may be qualified (r.asin)
  std::string right_key;  // may be qualified (p.asin)
};

struct SelectStatement {
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<PredicateAtom> where;  // conjunction; empty = no WHERE
};

/// Strip an optional qualifier: "pr.review" -> "review". Field names that
/// legitimately contain '.' are not used by the dialect.
std::string unqualified(const std::string& name);

}  // namespace llmq::sql
