#pragma once
// Catalog: named tables (with their FDs and optional ground truth) that
// SQL statements resolve against — the analytics system's metadata layer
// GGR draws its schema hints from (§4.2.1).

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "data/generators.hpp"
#include "sql/ast.hpp"
#include "table/fd.hpp"
#include "table/table.hpp"

namespace llmq::sql {

/// Produces the simulated LLM's answer for row `row` of the bound input
/// table under `call`. `candidates` are the literals the query compares
/// against (empty for projections).
using AnswerOracle = std::function<std::string(
    std::size_t row, const LlmCall& call,
    const std::vector<std::string>& candidates)>;

struct BoundTable {
  table::Table table;
  table::FdSet fds;
  /// Optional per-row labels; when present, LLM filter calls answer from
  /// these through the task-model noise channel, so SQL results line up
  /// with the benchmark datasets' ground truth.
  std::vector<std::string> truth;
  std::string key_field;  // answer-bearing field (may be empty)
};

class Catalog {
 public:
  void put(const std::string& name, BoundTable table);

  /// Convenience: register a benchmark dataset under `name`.
  void put_dataset(const std::string& name, const data::Dataset& d);

  bool has(const std::string& name) const;
  const BoundTable& get(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  std::map<std::string, BoundTable> tables_;
};

}  // namespace llmq::sql
