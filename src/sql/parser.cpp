#include "sql/parser.hpp"

namespace llmq::sql {

std::string unqualified(const std::string& name) {
  const auto pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  SelectStatement parse_select() {
    expect_keyword("SELECT");
    SelectStatement stmt;
    stmt.items.push_back(parse_item());
    while (accept_symbol(",")) stmt.items.push_back(parse_item());
    expect_keyword("FROM");
    stmt.from = parse_table_ref();
    if (accept_keyword("WHERE")) {
      stmt.where.push_back(parse_atom());
      while (accept_keyword("AND")) stmt.where.push_back(parse_atom());
    }
    if (!at_end())
      throw ParseError("unexpected trailing input '" + peek().text + "'",
                       peek().offset);
    return stmt;
  }

 private:
  SelectItem parse_item() {
    SelectItem item;
    if (accept_keyword("AVG")) {
      expect_symbol("(");
      expect_keyword("LLM");
      item.kind = SelectItem::Kind::AvgLlm;
      item.llm = parse_llm_args();
      expect_symbol(")");
    } else if (accept_keyword("LLM")) {
      item.kind = SelectItem::Kind::Llm;
      item.llm = parse_llm_args();
    } else {
      item.kind = SelectItem::Kind::Column;
      item.column = unqualified(expect_identifier("column name"));
    }
    if (accept_keyword("AS"))
      item.alias = expect_identifier("alias after AS");
    return item;
  }

  /// Parses '(' string (',' (field | '*'))* ')' — the argument list of an
  /// LLM call (the LLM keyword itself already consumed).
  LlmCall parse_llm_args() {
    expect_symbol("(");
    LlmCall call;
    const Token& p = peek();
    if (p.kind != TokenKind::String)
      throw ParseError("LLM() requires a prompt string as first argument",
                       p.offset);
    call.prompt = p.text;
    advance();
    while (accept_symbol(",")) {
      if (accept_symbol("*")) {
        call.star = true;
        continue;
      }
      // A qualified star ("pr.*") lexes as identifier "pr." followed by
      // the '*' symbol — detect it before stripping the qualifier.
      std::string raw = expect_identifier("field name");
      if (!raw.empty() && raw.back() == '.') {
        expect_symbol("*");
        call.star = true;
        continue;
      }
      call.fields.push_back(unqualified(raw));
    }
    expect_symbol(")");
    if (call.star) call.fields.clear();
    return call;
  }

  TableRef parse_table_ref() {
    TableRef ref;
    ref.table = expect_identifier("table name");
    if (accept_keyword("JOIN")) {
      ref.join_table = expect_identifier("join table name");
      expect_keyword("ON");
      ref.left_key = expect_identifier("join key");
      expect_symbol("=");
      ref.right_key = expect_identifier("join key");
    }
    return ref;
  }

  PredicateAtom parse_atom() {
    PredicateAtom atom;
    if (accept_keyword("LLM")) {
      atom.kind = PredicateAtom::Kind::LlmEquals;
      atom.llm = parse_llm_args();
      expect_symbol("=");
      const Token& lit = peek();
      if (lit.kind != TokenKind::String)
        throw ParseError("LLM predicate must compare to a string literal",
                         lit.offset);
      atom.literal = lit.text;
      advance();
      return atom;
    }
    atom.column = unqualified(expect_identifier("column in predicate"));
    if (accept_symbol("<>")) {
      expect_keyword("NULL");
      atom.kind = PredicateAtom::Kind::ColumnNotNull;
      return atom;
    }
    expect_symbol("=");
    const Token& lit = peek();
    if (lit.kind != TokenKind::String)
      throw ParseError("column comparison must use a string literal",
                       lit.offset);
    atom.kind = PredicateAtom::Kind::ColumnEquals;
    atom.literal = lit.text;
    advance();
    return atom;
  }

  // --- token plumbing ---
  const Token& peek() const { return tokens_[pos_]; }
  void advance() { if (pos_ + 1 < tokens_.size()) ++pos_; }
  bool at_end() const { return peek().kind == TokenKind::End; }

  bool accept_keyword(std::string_view kw) {
    if (peek().kind == TokenKind::Keyword && peek().text == kw) {
      advance();
      return true;
    }
    return false;
  }
  void expect_keyword(std::string_view kw) {
    if (!accept_keyword(kw))
      throw ParseError("expected " + std::string(kw), peek().offset);
  }
  bool accept_symbol(std::string_view sym) {
    if (peek().kind == TokenKind::Symbol && peek().text == sym) {
      advance();
      return true;
    }
    return false;
  }
  void expect_symbol(std::string_view sym) {
    if (!accept_symbol(sym))
      throw ParseError("expected '" + std::string(sym) + "', found '" +
                           peek().text + "'",
                       peek().offset);
  }
  std::string expect_identifier(const std::string& what) {
    if (peek().kind != TokenKind::Identifier)
      throw ParseError("expected " + what + ", found '" + peek().text + "'",
                       peek().offset);
    std::string out = peek().text;
    advance();
    return out;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

SelectStatement parse(std::string_view sql) {
  Parser parser(lex(sql));
  return parser.parse_select();
}

}  // namespace llmq::sql
