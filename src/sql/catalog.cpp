#include "sql/catalog.hpp"

#include <stdexcept>

namespace llmq::sql {

void Catalog::put(const std::string& name, BoundTable table) {
  tables_[name] = std::move(table);
}

void Catalog::put_dataset(const std::string& name, const data::Dataset& d) {
  BoundTable bt;
  bt.table = d.table;
  bt.fds = d.fds;
  bt.truth = d.truth;
  bt.key_field = d.key_field;
  put(name, std::move(bt));
}

bool Catalog::has(const std::string& name) const {
  return tables_.count(name) > 0;
}

const BoundTable& Catalog::get(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end())
    throw std::invalid_argument("catalog: unknown table '" + name + "'");
  return it->second;
}

std::vector<std::string> Catalog::names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

}  // namespace llmq::sql
