#pragma once
// Recursive-descent parser for the LLM-query dialect (see ast.hpp).

#include <stdexcept>

#include "sql/ast.hpp"
#include "sql/lexer.hpp"

namespace llmq::sql {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, std::size_t offset)
      : std::runtime_error(msg + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Parse one SELECT statement; trailing tokens are an error.
/// Throws ParseError / LexError on malformed input.
SelectStatement parse(std::string_view sql);

}  // namespace llmq::sql
