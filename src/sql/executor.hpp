#pragma once
// SQL execution: bind a SelectStatement against a Catalog, run each LLM
// call through the reordering planner + serving engine, and materialize a
// result table. This is the paper's end-to-end interface: the user writes
// SQL with LLM() calls; the system transparently reorders rows and fields
// per invocation to maximize KV-cache reuse (§1, §5).

#include <string>
#include <vector>

#include "query/plan.hpp"
#include "sql/catalog.hpp"
#include "sql/parser.hpp"

namespace llmq::sql {

struct SqlOptions {
  /// Method arm; defaults to the paper's Cache (GGR) configuration.
  query::ExecConfig exec = query::ExecConfig::standard(query::Method::CacheGgr);
  /// System prompt prepended to every LLM call (Appendix C).
  std::string system_prompt =
      "You are a data analyst. Use the provided JSON data to answer the "
      "user query based on the specified fields. Respond with only the "
      "answer, no extra formatting.";
  /// Mean output tokens for free-form (projection) LLM calls.
  double projection_output_tokens = 40.0;
  /// Position sensitivity applied to LLM filter calls (accuracy channel).
  double position_sensitivity = 0.1;
};

struct SqlStageReport {
  std::string label;  // e.g. "WHERE LLM#1", "SELECT LLM#2"
  query::StageMetrics metrics;
};

struct SqlResult {
  table::Table result;
  double simulated_seconds = 0.0;
  double solver_seconds = 0.0;
  std::vector<SqlStageReport> stages;

  std::uint64_t prompt_tokens() const;
  double overall_phr() const;
};

/// Execute a parsed statement.
SqlResult execute(const SelectStatement& stmt, const Catalog& catalog,
                  const SqlOptions& options = {});

/// Parse + execute.
SqlResult execute(std::string_view sql, const Catalog& catalog,
                  const SqlOptions& options = {});

}  // namespace llmq::sql
