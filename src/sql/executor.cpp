#include "sql/executor.hpp"

#include <algorithm>

#include "query/executor.hpp"
#include "table/join.hpp"
#include "table/value.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace llmq::sql {

std::uint64_t SqlResult::prompt_tokens() const {
  std::uint64_t total = 0;
  for (const auto& s : stages) total += s.metrics.engine.prompt_tokens;
  return total;
}

double SqlResult::overall_phr() const {
  std::uint64_t hit = 0, total = 0;
  for (const auto& s : stages) {
    hit += s.metrics.engine.cached_prompt_tokens;
    total += s.metrics.engine.prompt_tokens;
  }
  return total ? static_cast<double>(hit) / static_cast<double>(total) : 0.0;
}

namespace {

/// Working set during execution: the current table, its surviving truth
/// labels, and the FDs (schema metadata survives filtering).
struct Bound {
  table::Table table;
  table::FdSet fds;
  std::vector<std::string> truth;
  std::string key_field;
};

Bound bind_from(const TableRef& from, const Catalog& catalog) {
  const BoundTable& base = catalog.get(from.table);
  Bound b;
  b.fds = base.fds;
  b.key_field = base.key_field;
  if (!from.join_table) {
    b.table = base.table;
    b.truth = base.truth;
    return b;
  }
  const BoundTable& right = catalog.get(*from.join_table);
  b.table = table::hash_join(base.table, unqualified(from.left_key),
                             right.table, unqualified(from.right_key));
  for (const auto& e : right.fds.edges()) b.fds.add(e.determinant, e.dependent);
  // Row-aligned truth does not survive a join; LLM filters over joined
  // tables fall back to synthesized labels.
  return b;
}

/// Labels for an LLM filter when the bound table carries none: a
/// deterministic per-row draw over the candidate literals.
std::vector<std::string> synthesize_truth(
    const table::Table& t, const LlmCall& call,
    const std::vector<std::string>& candidates) {
  std::vector<std::string> out;
  out.reserve(t.num_rows());
  const std::uint64_t salt =
      util::hash64(call.prompt.data(), call.prompt.size());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    std::uint64_t h = salt;
    for (std::size_t c = 0; c < t.num_cols(); ++c) {
      const auto& cell = t.cell(r, c);
      h = util::hash_combine(h, util::hash64(cell.data(), cell.size()));
    }
    out.push_back(candidates[h % candidates.size()]);
  }
  return out;
}

/// Run one LLM call over `b.table`; returns per-row answers + metrics.
query::StageRun run_llm(const Bound& b, const LlmCall& call,
                        const std::vector<std::string>& candidates,
                        const SqlOptions& options) {
  data::QuerySpec spec;
  spec.id = "sql";
  spec.system_prompt = options.system_prompt;
  spec.position_sensitivity = options.position_sensitivity;
  data::StageSpec stage;
  stage.user_prompt = call.prompt;
  stage.fields = call.fields;  // empty = {T.*}
  stage.answers = candidates;
  stage.avg_output_tokens = options.projection_output_tokens;

  // Choose a truth channel: the dataset's labels when the compared
  // literal is actually one of them (so SQL filters over benchmark tables
  // match the benchmark semantics), else synthesized labels.
  std::vector<std::string> truth;
  if (!candidates.empty()) {
    const bool labels_match =
        !b.truth.empty() && b.truth.size() == b.table.num_rows() &&
        std::find(b.truth.begin(), b.truth.end(), candidates.front()) !=
            b.truth.end();
    truth = labels_match ? b.truth
                         : synthesize_truth(b.table, call, candidates);
  }
  return query::run_stage(b.table, b.fds, spec, stage, truth, b.key_field,
                          options.exec);
}

std::string item_name(const SelectItem& item, std::size_t index) {
  if (!item.alias.empty()) return item.alias;
  switch (item.kind) {
    case SelectItem::Kind::Column: return item.column;
    case SelectItem::Kind::Llm: return "llm_" + std::to_string(index + 1);
    case SelectItem::Kind::AvgLlm:
      return "avg_llm_" + std::to_string(index + 1);
  }
  return "expr_" + std::to_string(index + 1);
}

}  // namespace

SqlResult execute(const SelectStatement& stmt, const Catalog& catalog,
                  const SqlOptions& options) {
  SqlResult out;
  Bound bound = bind_from(stmt.from, catalog);

  auto absorb = [&](const char* label, std::size_t n,
                    const query::StageRun& run) {
    SqlStageReport rep;
    rep.label = label + std::string("#") + std::to_string(n);
    rep.metrics = run.metrics;
    out.stages.push_back(std::move(rep));
    out.simulated_seconds += run.metrics.engine.total_seconds;
    out.solver_seconds += run.metrics.solver_seconds;
  };

  // ---- WHERE: relational atoms first (cheap), then LLM atoms. ----------
  std::vector<const PredicateAtom*> llm_atoms;
  {
    std::vector<std::size_t> keep(bound.table.num_rows());
    for (std::size_t r = 0; r < keep.size(); ++r) keep[r] = r;
    bool filtered = false;
    for (const auto& atom : stmt.where) {
      if (atom.kind == PredicateAtom::Kind::LlmEquals) {
        llm_atoms.push_back(&atom);
        continue;
      }
      const std::size_t col = bound.table.schema().require(atom.column);
      std::vector<std::size_t> next;
      for (std::size_t r : keep) {
        const std::string& v = bound.table.cell(r, col);
        const bool pass = atom.kind == PredicateAtom::Kind::ColumnNotNull
                              ? (!v.empty() && v != "NULL")
                              : (v == atom.literal);
        if (pass) next.push_back(r);
      }
      keep = std::move(next);
      filtered = true;
    }
    if (filtered) {
      std::vector<std::string> truth;
      for (std::size_t r : keep)
        if (r < bound.truth.size()) truth.push_back(bound.truth[r]);
      if (truth.size() != keep.size()) truth.clear();
      bound.table = bound.table.take_rows(keep);
      bound.truth = std::move(truth);
    }
  }

  std::size_t llm_counter = 0;
  for (const PredicateAtom* atom : llm_atoms) {
    if (bound.table.num_rows() == 0) break;
    // Candidate answers: the compared literal plus a generic negative, so
    // the simulated model has a wrong option (real queries constrain the
    // output set in the prompt).
    std::vector<std::string> candidates{atom->literal};
    if (!bound.truth.empty()) {
      for (const auto& label : bound.truth)
        if (label != atom->literal &&
            std::find(candidates.begin(), candidates.end(), label) ==
                candidates.end()) {
          candidates.push_back(label);
          if (candidates.size() >= 4) break;
        }
    }
    if (candidates.size() == 1) candidates.push_back("NO MATCH");

    const auto run = run_llm(bound, atom->llm, candidates, options);
    absorb("WHERE LLM", ++llm_counter, run);

    std::vector<std::size_t> keep;
    for (std::size_t r = 0; r < bound.table.num_rows(); ++r)
      if (run.answers[r] == atom->literal) keep.push_back(r);
    std::vector<std::string> truth;
    for (std::size_t r : keep)
      if (r < bound.truth.size()) truth.push_back(bound.truth[r]);
    if (truth.size() != keep.size()) truth.clear();
    bound.table = bound.table.take_rows(keep);
    bound.truth = std::move(truth);
  }

  // ---- SELECT ----------------------------------------------------------
  const bool has_avg =
      std::any_of(stmt.items.begin(), stmt.items.end(), [](const auto& it) {
        return it.kind == SelectItem::Kind::AvgLlm;
      });

  std::vector<std::string> names;
  for (std::size_t i = 0; i < stmt.items.size(); ++i)
    names.push_back(item_name(stmt.items[i], i));

  if (has_avg) {
    // Aggregate result: one row; non-aggregate items are not allowed in
    // this dialect (no GROUP BY).
    for (const auto& item : stmt.items) {
      if (item.kind != SelectItem::Kind::AvgLlm)
        throw std::invalid_argument(
            "sql: AVG(LLM(...)) cannot be mixed with non-aggregate items");
    }
    table::Table result{table::Schema::of_names(names)};
    std::vector<std::string> row;
    for (const auto& item : stmt.items) {
      // Numeric 1-5 scoring, like the paper's aggregation queries.
      const std::vector<std::string> candidates{"1", "2", "3", "4", "5"};
      const auto run = run_llm(bound, item.llm, candidates, options);
      absorb("SELECT AVG LLM", ++llm_counter, run);
      double sum = 0.0;
      std::size_t count = 0;
      for (const auto& a : run.answers) {
        if (auto v = table::parse_double(a)) {
          sum += *v;
          ++count;
        }
      }
      row.push_back(util::fmt(count ? sum / static_cast<double>(count) : 0.0, 3));
    }
    result.append_row(std::move(row));
    out.result = std::move(result);
    return out;
  }

  // Column/LLM projection result: one output row per surviving input row.
  std::vector<std::vector<std::string>> columns;
  for (const auto& item : stmt.items) {
    if (item.kind == SelectItem::Kind::Column) {
      columns.push_back(bound.table.column(item.column));
    } else {
      const auto run = run_llm(bound, item.llm, {}, options);
      absorb("SELECT LLM", ++llm_counter, run);
      columns.push_back(run.answers);
    }
  }
  table::Table result{table::Schema::of_names(names)};
  for (std::size_t r = 0; r < bound.table.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(columns.size());
    for (const auto& col : columns) row.push_back(col[r]);
    result.append_row(std::move(row));
  }
  out.result = std::move(result);
  return out;
}

SqlResult execute(std::string_view sql, const Catalog& catalog,
                  const SqlOptions& options) {
  return execute(parse(sql), catalog, options);
}

}  // namespace llmq::sql
