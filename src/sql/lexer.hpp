#pragma once
// SQL lexer for the paper's LLM-query dialect (§1, §3.1, Appendix A).
//
// Tokenizes the subset of SQL the benchmark queries use: SELECT / FROM /
// WHERE / JOIN ... ON / AS / AND / AVG / LLM / NULL, identifiers
// (optionally qualified and containing '/' as in "beer/beerId"), single-
// quoted string literals with '' escaping, numbers, and the operators
// = <> ( ) , * .

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace llmq::sql {

enum class TokenKind {
  Keyword,     // SELECT, FROM, WHERE, JOIN, ON, AS, AND, AVG, LLM, NULL
  Identifier,  // possibly qualified: pr.review, beer/beerId
  String,      // 'text' (with '' escape)
  Number,      // 123 or 1.5
  Symbol,      // ( ) , = * and the two-char <>
  End,
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;       // keyword text is upper-cased; others verbatim
  std::size_t offset = 0; // byte offset in the input (for error messages)
};

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& msg, std::size_t offset)
      : std::runtime_error(msg + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Tokenize `sql`; the result always ends with an End token.
std::vector<Token> lex(std::string_view sql);

/// True if `word` (upper-cased) is one of the dialect's keywords.
bool is_keyword(std::string_view upper);

}  // namespace llmq::sql
