#include "sql/lexer.hpp"

#include <array>
#include <cctype>

namespace llmq::sql {

namespace {

constexpr std::array<std::string_view, 10> kKeywords = {
    "SELECT", "FROM", "WHERE", "JOIN", "ON", "AS", "AND", "AVG", "LLM",
    "NULL"};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  // '/' appears inside RateBeer field names (beer/beerId); '.' qualifies.
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '/' ||
         c == '.';
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

bool is_keyword(std::string_view upper) {
  for (auto k : kKeywords)
    if (k == upper) return true;
  return false;
}

std::vector<Token> lex(std::string_view sql) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      // SQL line comment.
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '\'') {
      std::string text;
      std::size_t start = i++;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text += sql[i++];
      }
      if (!closed) throw LexError("unterminated string literal", start);
      out.push_back(Token{TokenKind::String, std::move(text), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.'))
        ++i;
      out.push_back(
          Token{TokenKind::Number, std::string(sql.substr(start, i - start)),
                start});
      continue;
    }
    if (ident_start(c)) {
      std::size_t start = i;
      while (i < n && ident_char(sql[i])) ++i;
      std::string word(sql.substr(start, i - start));
      const std::string upper = to_upper(word);
      if (is_keyword(upper)) {
        out.push_back(Token{TokenKind::Keyword, upper, start});
      } else {
        out.push_back(Token{TokenKind::Identifier, std::move(word), start});
      }
      continue;
    }
    if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
      out.push_back(Token{TokenKind::Symbol, "<>", i});
      i += 2;
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == '=' || c == '*') {
      out.push_back(Token{TokenKind::Symbol, std::string(1, c), i});
      ++i;
      continue;
    }
    throw LexError(std::string("unexpected character '") + c + "'", i);
  }
  out.push_back(Token{TokenKind::End, "", n});
  return out;
}

}  // namespace llmq::sql
