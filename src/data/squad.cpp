// SQuAD (Rajpurkar et al. 2016) as a RAG workload (paper §6.1.2 T5):
// questions over Wikipedia articles; the top-5 retrieved passages become
// context1..context5. Questions about the same article retrieve the same
// passages — the cross-row sharing GGR exploits. Original field order puts
// the (unique) question first.

#include "data/gen_common.hpp"
#include "rag/context_builder.hpp"
#include "rag/vector_index.hpp"

namespace llmq::data {

using detail::dataset_rng;
using detail::rows_or_default;

Dataset generate_squad(const GenOptions& opt) {
  const std::size_t n = rows_or_default(opt, "squad");
  util::Rng rng = dataset_rng(opt, "squad");
  const auto& bank = util::default_wordbank();

  const std::size_t n_articles = std::max<std::size_t>(1, n / 40);
  const std::size_t passages_per_article = 6;

  rag::VectorIndex index{rag::Embedder(128)};
  std::vector<std::string> article_topic(n_articles);
  for (std::size_t a = 0; a < n_articles; ++a) {
    // A distinctive topic phrase anchors both passages and questions so
    // retrieval clusters by article.
    article_topic[a] = bank.title(rng, 3);
    for (std::size_t p = 0; p < passages_per_article; ++p) {
      // Passage p repeats the topic phrase (k+1-p) times: retrieval order
      // within a topic is then stable across question wordings, so
      // questions about one article see identical (context1..context5)
      // tuples — the alignment the paper's 70% RAG hit rate implies.
      std::string passage;
      for (std::size_t rep = 0; rep + p < passages_per_article + 1; ++rep)
        passage += article_topic[a] + ". ";
      passage += bank.text_of_tokens(rng, 165);
      index.add(std::move(passage));
    }
  }

  std::vector<std::string> questions;
  std::vector<std::string> answers;
  questions.reserve(n);
  util::Zipf popularity(n_articles, 0.5);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t a = popularity.sample(rng);
    questions.push_back("What does " + article_topic[a] + " say about " +
                        bank.title(rng, 2) + "?");
    answers.push_back(article_topic[a]);
  }

  rag::RagTableOptions ro;
  ro.k = 5;
  ro.question_field = "question";
  ro.context_prefix = "context";
  ro.question_first = true;

  Dataset d;
  d.name = "SQuAD";
  d.table = rag::build_rag_table(index, questions, ro);
  d.truth = std::move(answers);
  d.label_choices = {};  // open-ended QA (excluded from Fig 6, like paper)
  d.key_field = "question";
  return d;
}

}  // namespace llmq::data
