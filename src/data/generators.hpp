#pragma once
// Benchmark dataset generators.
//
// The paper evaluates on seven public datasets (Table 1, Appendix B). We
// regenerate each synthetically with matching *structure*: row/field
// counts, average token lengths, functional dependencies, value
// cardinalities, and — critically — the repetition patterns the paper
// describes (reviews joined with metadata tables duplicating product/movie
// fields; RateBeer dumps grouped by beer; RAG tables whose questions share
// retrieved contexts). GGR's behaviour depends only on this structure, not
// on the concrete text (DESIGN.md §1).
//
// Every generator is a pure function of (n_rows, seed).

#include <cstdint>
#include <string>
#include <vector>

#include "table/fd.hpp"
#include "table/table.hpp"

namespace llmq::data {

struct GenOptions {
  /// Number of rows; 0 = the paper's full size for that dataset.
  std::size_t n_rows = 0;
  std::uint64_t seed = 42;
};

/// A generated benchmark dataset: the LLM-input table plus everything the
/// benchmark queries need (FDs for GGR, ground-truth labels for accuracy).
struct Dataset {
  std::string name;
  table::Table table;
  table::FdSet fds;

  /// Ground-truth label per row for the dataset's filter/RAG task.
  std::vector<std::string> truth;
  /// Sentiment label per row ("POSITIVE"/"NEGATIVE") — the multi-LLM
  /// queries' stage-1 task (Movies/Products only).
  std::vector<std::string> sentiment_truth;
  /// Numeric sentiment score per row ("1".."5") — the aggregation queries'
  /// task (Movies/Products only).
  std::vector<std::string> score_truth;
  /// The task's admissible answers (first entries used as wrong choices).
  std::vector<std::string> label_choices;

  /// Truth channel by key: "filter" (default), "sentiment", or "score".
  /// Throws std::invalid_argument for unknown keys.
  const std::vector<std::string>& truth_for(const std::string& key) const;
  /// Field whose content determines the answer (position-sensitivity
  /// experiments key off where this field lands in the prompt).
  std::string key_field;
};

Dataset generate_movies(const GenOptions& opt = {});   // Rotten Tomatoes
Dataset generate_products(const GenOptions& opt = {}); // Amazon Reviews
Dataset generate_bird(const GenOptions& opt = {});     // BIRD Posts⋈Comments
Dataset generate_pdmx(const GenOptions& opt = {});     // Public Domain MusicXML
Dataset generate_beer(const GenOptions& opt = {});     // RateBeer
Dataset generate_squad(const GenOptions& opt = {});    // SQuAD RAG table
Dataset generate_fever(const GenOptions& opt = {});    // FEVER RAG table

/// Dispatch by dataset key ("movies", "products", "bird", "pdmx", "beer",
/// "squad", "fever"). Throws std::invalid_argument for unknown keys.
Dataset generate_dataset(const std::string& key, const GenOptions& opt = {});

/// All seven dataset keys in the paper's presentation order.
const std::vector<std::string>& dataset_keys();

/// The paper's full row count for a dataset key (Table 1).
std::size_t paper_rows(const std::string& key);

}  // namespace llmq::data
