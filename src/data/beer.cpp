// RateBeer Reviews (McAuley et al. 2012). Short rows (Table 1: 156 avg
// input tokens): beer identity fields plus numeric sub-scores whose values
// correlate through a quality tier, yielding many exact duplicates across
// rows. The export is ordered by review time (interleaved across beers),
// so Cache (Original) sits near the ~50% the paper reports — mostly the
// shared instruction prefix plus incidental duplicates — while GGR
// regroups by beer and rating tier to reach ~80%.
// FD group: [beer/beerId, beer/name] (we also tie style to the beer).

#include <algorithm>

#include "data/gen_common.hpp"

namespace llmq::data {

using detail::dataset_rng;
using detail::rows_or_default;

Dataset generate_beer(const GenOptions& opt) {
  const std::size_t n = rows_or_default(opt, "beer");
  util::Rng rng = dataset_rng(opt, "beer");
  const auto& bank = util::default_wordbank();

  static const char* kStyles[] = {
      "India Pale Ale", "Imperial Stout", "Pilsner", "Hefeweizen",
      "Belgian Tripel", "Porter", "Amber Lager", "Saison", "Barleywine",
      "Witbier", "Doppelbock", "Pale Lager"};
  // European origin is a property of the style (ground truth for the
  // filter query "does this beer have European origin?").
  static const bool kEuropean[] = {false, false, true, true, true, false,
                                   false, true,  false, true, true, true};

  const std::size_t n_beers = std::max<std::size_t>(1, n / 35);
  std::vector<std::string> reviewers;
  for (int i = 0; i < 400; ++i) reviewers.push_back(bank.title(rng, 1));

  struct Beer {
    std::string id, name;
    std::size_t style;
    int base_quality;  // 1..5; reviews cluster around it
  };
  std::vector<Beer> beers;
  beers.reserve(n_beers);
  for (std::size_t i = 0; i < n_beers; ++i)
    beers.push_back(Beer{std::to_string(10000 + i), bank.title(rng, 3),
                         rng.next_below(std::size(kStyles)),
                         1 + static_cast<int>(rng.next_below(5))});

  Dataset d;
  d.name = "Beer";
  d.table = table::Table{table::Schema::of_names(
      {"beer/beerId", "beer/name", "beer/style", "review/appearance",
       "review/overall", "review/palate", "review/profileName",
       "review/taste", "review/time"})};

  // Time-ordered export: each review gets a timestamp; rows are emitted in
  // time order, interleaving beers (the original ordering GGR must undo).
  struct Review {
    std::size_t beer;
    int tier;
    std::size_t reviewer;
    std::uint64_t time;
  };
  util::Zipf popularity(n_beers, 0.6);
  std::vector<Review> reviews;
  reviews.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t b = popularity.sample(rng);
    // Sub-scores correlate strongly through a per-review quality tier
    // around the beer's base quality — real multi-aspect reviews behave
    // this way (McAuley et al. 2012), and the resulting exact duplicates
    // across (appearance, overall, palate, taste) are what per-row field
    // reordering exploits on this dataset.
    const int jitter = static_cast<int>(rng.next_below(5));  // 0..4
    const int tier = std::clamp(
        beers[b].base_quality + (jitter == 0 ? -1 : jitter == 4 ? 1 : 0), 1,
        5);
    reviews.push_back(Review{b, tier, rng.next_below(reviewers.size()),
                             1293840000 + rng.next_below(100000000)});
  }
  std::sort(reviews.begin(), reviews.end(),
            [](const Review& a, const Review& b) { return a.time < b.time; });
  for (const Review& r : reviews) {
    const Beer& beer = beers[r.beer];
    d.table.append_row({beer.id, beer.name, kStyles[beer.style],
                        std::to_string(r.tier) + "/5",
                        std::to_string(4 * r.tier) + "/20",
                        std::to_string(r.tier) + "/5", reviewers[r.reviewer],
                        std::to_string(2 * r.tier) + "/10",
                        std::to_string(r.time)});
    d.truth.emplace_back(kEuropean[beer.style] ? "YES" : "NO");
  }

  d.fds.add_group({"beer/beerId", "beer/name"});
  d.fds.add("beer/beerId", "beer/style");
  d.fds.add("beer/name", "beer/style");
  d.label_choices = {"YES", "NO"};
  d.key_field = "beer/style";
  return d;
}

}  // namespace llmq::data
