// Amazon Product Reviews (He & McAuley 2016 layout per Appendix B).
//
// Reviews joined with a product-metadata table on parent_asin; the long
// `description` and `product_title` repeat per product (exact FD group
// [parent_asin, product_title]); `text` and `id` are unique per review.

#include "data/gen_common.hpp"
#include "table/join.hpp"

namespace llmq::data {

using detail::dataset_rng;
using detail::rows_or_default;

Dataset generate_products(const GenOptions& opt) {
  const std::size_t n = rows_or_default(opt, "products");
  util::Rng rng = dataset_rng(opt, "products");
  const auto& bank = util::default_wordbank();

  const std::size_t n_products = std::max<std::size_t>(1, n / 12);
  table::Table products(
      table::Schema::of_names({"parent_asin", "product_title", "description"}));
  for (std::size_t i = 0; i < n_products; ++i) {
    char asin[24];
    std::snprintf(asin, sizeof(asin), "B%09zu", i);
    products.append_row(
        {asin, bank.title(rng, 4), bank.text_of_tokens(rng, 150)});
  }

  util::Zipf popularity(n_products, 0.9);
  table::Table reviews(table::Schema::of_names(
      {"id", "review_title", "text", "rating", "verified_purchase", "fk"}));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = popularity.sample(rng);
    reviews.append_row({"R" + std::to_string(1000000 + i),
                        bank.title(rng, 4), bank.text_of_tokens(rng, 55),
                        std::to_string(1 + rng.next_below(5)),
                        rng.next_bool(0.8) ? "true" : "false",
                        products.cell(p, 0)});
  }

  table::Table joined = table::hash_join(reviews, "fk", products, "parent_asin");

  Dataset d;
  d.name = "Products";
  // Appendix-B order: description, id, parent_asin (join key == fk),
  // product_title, rating, review_title, text, verified_purchase.
  d.table = joined.project(std::vector<std::string>{
      "description", "id", "fk", "product_title", "rating", "review_title",
      "text", "verified_purchase"});
  {
    std::vector<table::Field> fields = d.table.schema().fields();
    fields[2].name = "parent_asin";
    table::Table renamed{table::Schema(fields)};
    for (std::size_t r = 0; r < d.table.num_rows(); ++r)
      renamed.append_row(d.table.row(r));
    d.table = std::move(renamed);
  }
  d.fds.add_group({"parent_asin", "product_title"});
  // Product description is determined by the product as well.
  d.fds.add("parent_asin", "description");
  d.fds.add("product_title", "description");

  // Filter task: sentiment of the review (POSITIVE/NEGATIVE/NEUTRAL),
  // driven by the review text and correlated with the numeric rating.
  d.label_choices = {"POSITIVE", "NEGATIVE", "NEUTRAL"};
  d.key_field = "text";
  const std::size_t rating_col = d.table.schema().require("rating");
  const std::size_t text_col = d.table.schema().require("text");
  for (std::size_t r = 0; r < d.table.num_rows(); ++r) {
    const std::string& rating = d.table.cell(r, rating_col);
    if (rating == "4" || rating == "5")
      d.truth.emplace_back("POSITIVE");
    else if (rating == "1" || rating == "2")
      d.truth.emplace_back("NEGATIVE");
    else
      d.truth.emplace_back("NEUTRAL");
    // Binary sentiment (multi-LLM stage 1): neutral rows break by content.
    if (rating == "3")
      d.sentiment_truth.push_back(detail::pick_label(
          d.table.cell(r, text_col), 0x3E9, {"POSITIVE", "NEGATIVE"}, {1, 1}));
    else
      d.sentiment_truth.emplace_back(
          (rating == "4" || rating == "5") ? "POSITIVE" : "NEGATIVE");
    // Aggregation score: the star rating itself.
    d.score_truth.push_back(rating);
  }
  return d;
}

}  // namespace llmq::data
