#include "data/generators.hpp"

#include <stdexcept>

namespace llmq::data {

const std::vector<std::string>& Dataset::truth_for(
    const std::string& key) const {
  if (key == "filter") return truth;
  if (key == "sentiment") return sentiment_truth;
  if (key == "score") return score_truth;
  throw std::invalid_argument("unknown truth key: " + key);
}

Dataset generate_dataset(const std::string& key, const GenOptions& opt) {
  if (key == "movies") return generate_movies(opt);
  if (key == "products") return generate_products(opt);
  if (key == "bird") return generate_bird(opt);
  if (key == "pdmx") return generate_pdmx(opt);
  if (key == "beer") return generate_beer(opt);
  if (key == "squad") return generate_squad(opt);
  if (key == "fever") return generate_fever(opt);
  throw std::invalid_argument("unknown dataset key: " + key);
}

const std::vector<std::string>& dataset_keys() {
  static const std::vector<std::string> keys{
      "movies", "products", "bird", "pdmx", "beer", "squad", "fever"};
  return keys;
}

std::size_t paper_rows(const std::string& key) {
  if (key == "movies") return 15000;
  if (key == "products") return 14890;
  if (key == "bird") return 14920;
  if (key == "pdmx") return 10000;
  if (key == "beer") return 28479;
  if (key == "squad") return 22665;
  if (key == "fever") return 19929;
  throw std::invalid_argument("unknown dataset key: " + key);
}

}  // namespace llmq::data
