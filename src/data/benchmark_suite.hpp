#pragma once
// The paper's 16-query benchmark suite (§6.1.2, Appendix A/C).
//
// Five query types over seven datasets:
//   T1 LLM filter       x5  (Movies, Products, BIRD, PDMX, Beer)
//   T2 LLM projection   x5  (Movies, Products, BIRD, PDMX, Beer)
//   T3 Multi-LLM        x2  (Movies, Products)
//   T4 LLM aggregation  x2  (Movies, Products)
//   T5 RAG              x2  (FEVER, SQuAD)
// Prompts are the paper's Appendix C texts; average output lengths are
// Table 1's per-type values.

#include <optional>
#include <string>
#include <vector>

#include "data/generators.hpp"

namespace llmq::data {

enum class QueryType { Filter, Projection, MultiLlm, Aggregation, Rag };

std::string to_string(QueryType t);

struct StageSpec {
  std::string user_prompt;
  /// Fields passed to the LLM operator; empty = all table fields ({T.*}).
  std::vector<std::string> fields;
  double avg_output_tokens = 2.0;
  /// Constrained-output answers, when the stage is categorical.
  std::vector<std::string> answers;
  /// Which Dataset truth channel grades this stage ("filter", "sentiment",
  /// or "score").
  std::string truth_key = "filter";
};

struct QuerySpec {
  std::string id;        // e.g. "movies-filter"
  std::string dataset;   // dataset key for generate_dataset()
  QueryType type = QueryType::Filter;
  std::string system_prompt;
  StageSpec stage1;
  /// Second LLM invocation (multi-LLM queries only).
  std::optional<StageSpec> stage2;
  /// How strongly this task's accuracy depends on the position of the
  /// dataset's key field (paper §6.4: high for FEVER, mild elsewhere).
  double position_sensitivity = 0.1;
};

/// All 16 benchmark queries in presentation order.
const std::vector<QuerySpec>& benchmark_queries();

/// Queries of one type (e.g. all five filter queries for Fig 3a).
std::vector<QuerySpec> queries_of_type(QueryType t);

/// Lookup by id; throws std::invalid_argument if absent.
const QuerySpec& query_by_id(const std::string& id);

}  // namespace llmq::data
