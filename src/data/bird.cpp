// BIRD (Li et al. 2024): Posts and Comments tables joined on PostId
// (paper footnote 1). The long post Body repeats across that post's
// comments ([Body, PostId] FD group); the comment Text is unique.

#include "data/gen_common.hpp"
#include "table/join.hpp"

namespace llmq::data {

using detail::dataset_rng;
using detail::rows_or_default;

Dataset generate_bird(const GenOptions& opt) {
  const std::size_t n = rows_or_default(opt, "bird");
  util::Rng rng = dataset_rng(opt, "bird");
  const auto& bank = util::default_wordbank();

  const std::size_t n_posts = std::max<std::size_t>(1, n / 8);
  table::Table posts(table::Schema::of_names({"PostId", "Body", "PostDate"}));
  for (std::size_t i = 0; i < n_posts; ++i) {
    const unsigned year = 2009 + static_cast<unsigned>(rng.next_below(6));
    const unsigned month = 1 + static_cast<unsigned>(rng.next_below(12));
    const unsigned day = 1 + static_cast<unsigned>(rng.next_below(28));
    char date[24];
    std::snprintf(date, sizeof(date), "%04u-%02u-%02u", year, month, day);
    posts.append_row({std::to_string(100000 + i),
                      bank.text_of_tokens(rng, 420), date});
  }

  util::Zipf popularity(n_posts, 0.7);
  table::Table comments(table::Schema::of_names({"Text", "fk"}));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = popularity.sample(rng);
    comments.append_row({bank.text_of_tokens(rng, 105), posts.cell(p, 0)});
  }

  table::Table joined = table::hash_join(comments, "fk", posts, "PostId");

  Dataset d;
  d.name = "BIRD";
  // Appendix-B order: Body, PostDate, PostId, Text.
  d.table = joined.project(std::vector<std::string>{"Body", "PostDate", "fk",
                                                    "Text"});
  {
    std::vector<table::Field> fields = d.table.schema().fields();
    fields[2].name = "PostId";
    table::Table renamed{table::Schema(fields)};
    for (std::size_t r = 0; r < d.table.num_rows(); ++r)
      renamed.append_row(d.table.row(r));
    d.table = std::move(renamed);
  }
  d.fds.add_group({"Body", "PostId"});
  d.fds.add("PostId", "PostDate");
  d.fds.add("Body", "PostDate");

  // Filter task: is the post related to statistics?
  d.label_choices = {"YES", "NO"};
  d.key_field = "Body";
  const std::size_t body_col = d.table.schema().require("Body");
  for (std::size_t r = 0; r < d.table.num_rows(); ++r)
    d.truth.push_back(detail::pick_label(d.table.cell(r, body_col), 0xB17D,
                                         d.label_choices, {1, 1}));
  return d;
}

}  // namespace llmq::data
