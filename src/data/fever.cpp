// FEVER (Thorne et al. 2018) as a RAG workload (paper §6.1.2 T5): claims
// verified against top-4 retrieved evidence passages. Ground-truth labels
// {SUPPORTS, REFUTES, NOT ENOUGH INFO} exist for every row (the paper uses
// them directly for the accuracy study, where FEVER is the dataset with
// the strong field-position effect on Llama3-8B).

#include "data/gen_common.hpp"
#include "rag/context_builder.hpp"
#include "rag/vector_index.hpp"

namespace llmq::data {

using detail::dataset_rng;
using detail::rows_or_default;

Dataset generate_fever(const GenOptions& opt) {
  const std::size_t n = rows_or_default(opt, "fever");
  util::Rng rng = dataset_rng(opt, "fever");
  const auto& bank = util::default_wordbank();

  const std::size_t n_topics = std::max<std::size_t>(1, n / 50);
  const std::size_t passages_per_topic = 5;

  rag::VectorIndex index{rag::Embedder(128)};
  std::vector<std::string> topics(n_topics);
  for (std::size_t t = 0; t < n_topics; ++t) {
    topics[t] = bank.title(rng, 3);
    for (std::size_t p = 0; p < passages_per_topic; ++p) {
      // Passage p repeats the topic phrase (k+1-p) times so within-topic
      // retrieval order is stable across claim wordings (see squad.cpp).
      std::string evidence;
      for (std::size_t rep = 0; rep + p < passages_per_topic + 1; ++rep)
        evidence += topics[t] + ". ";
      evidence += bank.text_of_tokens(rng, 280);
      index.add(std::move(evidence));
    }
  }

  std::vector<std::string> claims;
  std::vector<std::string> labels;
  claims.reserve(n);
  const std::vector<std::string> choices{"SUPPORTS", "REFUTES",
                                         "NOT ENOUGH INFO"};
  util::Zipf popularity(n_topics, 0.5);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t t = popularity.sample(rng);
    std::string claim =
        topics[t] + " is associated with " + bank.title(rng, 2) + ".";
    labels.push_back(detail::pick_label(claim, 0xFE4E8, choices, {5, 3, 2}));
    claims.push_back(std::move(claim));
  }

  rag::RagTableOptions ro;
  ro.k = 4;
  ro.question_field = "claim";
  ro.context_prefix = "evidence";
  ro.question_first = true;

  Dataset d;
  d.name = "FEVER";
  d.table = rag::build_rag_table(index, claims, ro);
  d.truth = std::move(labels);
  d.label_choices = choices;
  d.key_field = "claim";
  return d;
}

}  // namespace llmq::data
