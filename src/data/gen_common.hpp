#pragma once
// Internal helpers shared by the dataset generators (not installed API).

#include <string>
#include <vector>

#include "data/generators.hpp"
#include "util/rng.hpp"
#include "util/wordbank.hpp"
#include "util/zipf.hpp"

namespace llmq::data::detail {

inline std::size_t rows_or_default(const GenOptions& opt,
                                   const std::string& key) {
  return opt.n_rows ? opt.n_rows : paper_rows(key);
}

inline util::Rng dataset_rng(const GenOptions& opt, const std::string& key) {
  return util::Rng(util::hash_combine(
      util::hash64(opt.seed), util::hash64(key.data(), key.size())));
}

/// Deterministic label from content: hashes `content` with `salt` and
/// picks choices[h % weights_total] area according to integer weights.
/// Example: pick({"Yes","No"}, {1,2}) labels ~1/3 Yes.
inline std::string pick_label(std::string_view content, std::uint64_t salt,
                              const std::vector<std::string>& choices,
                              const std::vector<std::size_t>& weights) {
  std::size_t total = 0;
  for (auto w : weights) total += w;
  const std::uint64_t h = util::hash_combine(
      util::hash64(content.data(), content.size()), salt);
  std::uint64_t slot = h % total;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (slot < weights[i]) return choices[i];
    slot -= weights[i];
  }
  return choices.back();
}

/// A pool of reusable values (metadata-style): `count` values, each text of
/// ~`tokens` tokens, sampled by Zipf(skew) — models skewed references to
/// popular items.
class ValuePool {
 public:
  ValuePool(util::Rng rng, std::size_t count, std::size_t tokens,
            double zipf_skew, const util::WordBank& bank = util::default_wordbank())
      : zipf_(count, zipf_skew) {
    values_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      values_.push_back(bank.text_of_tokens(rng, tokens));
  }

  const std::string& sample(util::Rng& rng) const {
    return values_[zipf_.sample(rng)];
  }
  const std::string& at(std::size_t i) const { return values_[i % values_.size()]; }
  std::size_t size() const { return values_.size(); }

 private:
  std::vector<std::string> values_;
  util::Zipf zipf_;
};

}  // namespace llmq::data::detail
