// PDMX — Public Domain MusicXML (Long et al. 2024). 57 fields per Table 1:
// a wide mix of booleans, counters, scores, and long text fields.
//
// Structure: PDMX rows are *arrangements*; several rows belong to the same
// underlying song (hence the dataset's isbestarrangement /
// subsetdeduplicated fields). Song-level fields — the long lyrics `text`,
// names, genre/tags/license, and the flag profile — repeat across a song's
// arrangements, while `metadata`/`path`/ids/engagement counters are unique
// per row. The per-row-unique long `metadata` JSON is the irreducible miss
// the paper reports (GGR reaches 57% with a 43% residual miss; original
// ordering sits at ~12%).
//
// FD groups per Appendix B: [metadata, path] and the six-flag group
// [hasannotations, hasmetadata, isdraft, isofficial, isuserpublisher,
// subsetall] (two uploader-tier profiles keep the mutual dependency
// exact); we add the songlength unit-conversion group.

#include "data/gen_common.hpp"
#include "util/strings.hpp"

namespace llmq::data {

using detail::dataset_rng;
using detail::rows_or_default;

Dataset generate_pdmx(const GenOptions& opt) {
  const std::size_t n = rows_or_default(opt, "pdmx");
  util::Rng rng = dataset_rng(opt, "pdmx");
  const auto& bank = util::default_wordbank();

  const std::vector<std::string> field_names{
      "artistname", "bestarrangement", "bestpath", "composername",
      "complexity", "genre", "grooveconsistency", "groups", "hasannotations",
      "hascustomaudio", "hascustomvideo", "haslyrics", "hasmetadata",
      "haspaywall", "id", "isbestarrangement", "isbestpath",
      "isbestuniquearrangement", "isdraft", "isofficial", "isoriginal",
      "isuserpro", "isuserpublisher", "isuserstaff", "license", "licenseurl",
      "metadata", "nannotations", "ncomments", "nfavorites", "nlyrics",
      "notesperbar", "nnotes", "nratings", "ntracks", "ntokens", "nviews",
      "path", "pitchclassentropy", "postdate", "postid", "publisher",
      "rating", "scaleconsistency", "songlength", "songlengthbars",
      "songlengthbeats", "songlengthseconds", "songname", "subsetall",
      "subsetdeduplicated", "subsetrated", "subsetrateddeduplicated",
      "subtitle", "tags", "text", "title"};

  static const char* kGenres[] = {"classical", "folk", "jazz",  "pop",
                                  "rock",      "choral", "soundtrack",
                                  "traditional"};
  static const char* kLicenses[] = {"CC0", "CC-BY", "CC-BY-SA", "PD"};

  // Two mutually-consistent uploader-tier flag profiles (makes the
  // Appendix-B six-field FD group exact).
  struct FlagProfile {
    const char *hasannotations, *hasmetadata, *isdraft, *isofficial,
        *isuserpublisher, *subsetall;
  };
  static const FlagProfile kProfiles[2] = {
      {"True", "True", "False", "True", "False", "True"},
      {"False", "False", "True", "False", "True", "False"}};

  // Song pool: ~4 arrangements per song. Everything in Song repeats across
  // its arrangement rows.
  struct Song {
    std::string name, subtitle, title, artist, composer, publisher, tags,
        lyrics, genre, license, grooveconsistency, pitchclassentropy;
    int profile;
    const char *haslyrics, *isoriginal, *hascustomaudio;
    std::size_t nlyrics, ntracks;
  };
  const std::size_t n_songs = std::max<std::size_t>(1, n / 4);
  std::vector<Song> songs;
  songs.reserve(n_songs);
  std::vector<std::string> tag_pool;
  for (int i = 0; i < 60; ++i) tag_pool.push_back(bank.title(rng, 2));
  std::vector<std::string> publishers;
  for (int i = 0; i < 50; ++i) publishers.push_back(bank.title(rng, 2));
  for (std::size_t s = 0; s < n_songs; ++s) {
    Song song;
    song.name = bank.title(rng, 3);
    song.subtitle = bank.title(rng, 2);
    song.title = song.name;
    song.artist = bank.title(rng, 2);
    song.composer = bank.title(rng, 2);
    song.publisher = publishers[rng.next_below(publishers.size())];
    song.tags = tag_pool[rng.next_below(tag_pool.size())] + "; " +
                tag_pool[rng.next_below(tag_pool.size())];
    song.lyrics = bank.text_of_tokens(rng, 145);
    song.genre = kGenres[rng.next_below(std::size(kGenres))];
    song.license = kLicenses[rng.next_below(std::size(kLicenses))];
    song.grooveconsistency =
        util::fmt(0.5 + 0.1 * static_cast<double>(rng.next_below(5)), 1);
    song.pitchclassentropy =
        util::fmt(1.0 + 0.25 * static_cast<double>(rng.next_below(12)), 2);
    song.profile = static_cast<int>(rng.next_below(2));
    song.haslyrics = rng.next_bool(0.6) ? "True" : "False";
    song.isoriginal = rng.next_bool(0.3) ? "True" : "False";
    song.hascustomaudio = rng.next_bool(0.1) ? "True" : "False";
    song.nlyrics = rng.next_below(40);
    song.ntracks = 1 + rng.next_below(8);
    songs.push_back(std::move(song));
  }

  table::Table t{table::Schema::of_names(field_names)};
  auto col = [&](const char* name) { return t.schema().require(name); };

  util::Zipf popularity(n_songs, 0.4);
  for (std::size_t r = 0; r < n; ++r) {
    const Song& song = songs[popularity.sample(rng)];
    const FlagProfile& fp = kProfiles[song.profile];
    std::vector<std::string> row(field_names.size());
    const std::string id = std::to_string(5000000 + r);

    auto set = [&](const char* name, std::string v) {
      row[col(name)] = std::move(v);
    };
    // --- song-level (repeats across arrangements) ---
    set("artistname", song.artist);
    set("composername", song.composer);
    set("songname", song.name);
    set("subtitle", song.subtitle);
    set("title", song.title);
    set("publisher", song.publisher);
    set("tags", song.tags);
    set("text", song.lyrics);
    set("genre", song.genre);
    set("license", song.license);
    set("licenseurl", "https://creativecommons.org/" + song.license);
    set("grooveconsistency", song.grooveconsistency);
    set("pitchclassentropy", song.pitchclassentropy);
    set("haslyrics", song.haslyrics);
    set("isoriginal", song.isoriginal);
    set("hascustomaudio", song.hascustomaudio);
    set("nlyrics", std::to_string(song.nlyrics));
    set("ntracks", std::to_string(song.ntracks));
    set("hasannotations", fp.hasannotations);
    set("hasmetadata", fp.hasmetadata);
    set("isdraft", fp.isdraft);
    set("isofficial", fp.isofficial);
    set("isuserpublisher", fp.isuserpublisher);
    set("subsetall", fp.subsetall);

    // --- arrangement-level (varies within a song) ---
    set("bestarrangement", rng.next_bool(0.5) ? "True" : "False");
    set("bestpath", rng.next_bool(0.5) ? "True" : "False");
    set("isbestarrangement", rng.next_bool(0.25) ? "True" : "False");
    set("isbestpath", rng.next_bool(0.25) ? "True" : "False");
    set("isbestuniquearrangement", rng.next_bool(0.25) ? "True" : "False");
    set("isuserpro", rng.next_bool(0.2) ? "True" : "False");
    set("isuserstaff", rng.next_bool(0.05) ? "True" : "False");
    set("hascustomvideo", rng.next_bool(0.05) ? "True" : "False");
    set("subsetdeduplicated", rng.next_bool(0.7) ? "True" : "False");
    set("subsetrated", rng.next_bool(0.4) ? "True" : "False");
    set("subsetrateddeduplicated", rng.next_bool(0.3) ? "True" : "False");
    set("complexity", std::to_string(1 + rng.next_below(5)));
    set("groups", std::to_string(rng.next_below(4)));
    set("notesperbar", std::to_string(2 + rng.next_below(10)));
    set("rating", util::fmt(0.5 * static_cast<double>(rng.next_below(11)), 1));
    set("scaleconsistency",
        util::fmt(0.5 + 0.05 * static_cast<double>(rng.next_below(10)), 2));
    const std::size_t bars = 16 + rng.next_below(200);
    set("songlength", std::to_string(bars * 4));
    set("songlengthbars", std::to_string(bars));
    set("songlengthbeats", std::to_string(bars * 4));
    set("songlengthseconds", std::to_string(bars * 2));

    // --- per-row unique (the irreducible miss) ---
    set("id", id);
    set("postid", std::to_string(900000 + r));
    set("postdate", std::to_string(2015 + rng.next_below(10)) + "-" +
                        std::to_string(1 + rng.next_below(12)));
    util::Rng meta_rng = rng.fork(r + 1);
    set("metadata", "{\"score\":\"" + bank.text_of_tokens(meta_rng, 105) +
                        "\",\"mid\":" + id + "}");
    set("path", "/data/pdmx/" + id.substr(0, 3) + "/" + id + ".musicxml");
    set("nannotations", std::to_string(rng.next_below(10)));
    set("ncomments", std::to_string(rng.next_below(20)));
    set("nfavorites", std::to_string(rng.next_below(500)));
    set("nnotes", std::to_string(100 + rng.next_below(5000)));
    set("nratings", std::to_string(rng.next_below(100)));
    set("ntokens", std::to_string(500 + rng.next_below(20000)));
    set("nviews", std::to_string(rng.next_below(100000)));
    t.append_row(std::move(row));
  }

  Dataset d;
  d.name = "PDMX";
  d.table = std::move(t);
  d.fds.add_group({"metadata", "path"});
  d.fds.add_group({"hasannotations", "hasmetadata", "isdraft", "isofficial",
                   "isuserpublisher", "subsetall"});
  d.fds.add_group({"songlengthbars", "songlength", "songlengthbeats",
                   "songlengthseconds"});
  // Song-level fields hang together: the lyrics text determines every
  // other song-level attribute (arrangements of a song share all of them).
  for (const char* dep :
       {"songname", "title", "subtitle", "artistname", "composername",
        "publisher", "tags", "genre", "license", "licenseurl",
        "grooveconsistency", "pitchclassentropy", "haslyrics", "isoriginal",
        "hascustomaudio", "nlyrics", "ntracks", "hasannotations",
        "hasmetadata", "isdraft", "isofficial", "isuserpublisher",
        "subsetall"})
    d.fds.add("text", dep);

  // Filter task: does song info reference a specific individual?
  d.label_choices = {"YES", "NO"};
  d.key_field = "text";
  const std::size_t text_col = d.table.schema().require("text");
  for (std::size_t r = 0; r < d.table.num_rows(); ++r)
    d.truth.push_back(detail::pick_label(d.table.cell(r, text_col), 0x9D67,
                                         d.label_choices, {2, 3}));
  return d;
}

}  // namespace llmq::data
