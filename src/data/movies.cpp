// Rotten Tomatoes Movies (Pang & Lee 2005 layout per Appendix B).
//
// Structure: a movie-metadata table (~1 movie per 10 reviews) joined with
// a review table; each joined row repeats the movie's metadata fields
// (movieinfo/movietitle/rottentomatoeslink tied by an exact FD group) while
// reviewcontent is unique per row. Rows are shuffled, so the original
// ordering has no adjacent metadata runs — GGR must regroup them.

#include "data/gen_common.hpp"
#include "table/join.hpp"

namespace llmq::data {

using detail::dataset_rng;
using detail::rows_or_default;

Dataset generate_movies(const GenOptions& opt) {
  const std::size_t n = rows_or_default(opt, "movies");
  util::Rng rng = dataset_rng(opt, "movies");
  const auto& bank = util::default_wordbank();

  // --- metadata side -------------------------------------------------
  const std::size_t n_movies = std::max<std::size_t>(1, n / 10);
  std::vector<std::string> genre_pool;
  {
    static const char* kGenres[] = {"Comedy", "Drama",  "Action", "Horror",
                                    "Romance", "SciFi", "Family", "Thriller"};
    for (const char* a : kGenres)
      for (const char* b : kGenres)
        if (std::string(a) != b)
          genre_pool.push_back(std::string(a) + ", " + b);
  }
  std::vector<std::string> company_pool;
  for (int i = 0; i < 40; ++i) company_pool.push_back(bank.title(rng, 2));

  table::Table movies(table::Schema::of_names(
      {"movietitle", "genres", "movieinfo", "productioncompany",
       "rottentomatoeslink"}));
  for (std::size_t i = 0; i < n_movies; ++i) {
    const std::string title = bank.title(rng, 3) + " " +
                              std::to_string(1950 + rng.next_below(75));
    std::string slug;
    for (char c : title) slug += (c == ' ') ? '_' : c;
    movies.append_row({title, genre_pool[rng.next_below(genre_pool.size())],
                       bank.text_of_tokens(rng, 80),
                       company_pool[rng.next_below(company_pool.size())],
                       "https://www.rottentomatoes.com/m/" + slug});
  }

  // --- review side (skewed movie popularity) -------------------------
  util::Zipf popularity(n_movies, 0.8);
  table::Table reviews(table::Schema::of_names(
      {"reviewcontent", "reviewtype", "topcritic", "movietitle_fk"}));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t movie = popularity.sample(rng);
    reviews.append_row({bank.text_of_tokens(rng, 38),
                        rng.next_bool(0.62) ? "Fresh" : "Rotten",
                        rng.next_bool(0.3) ? "True" : "False",
                        movies.cell(movie, 0)});
  }

  table::Table joined =
      table::hash_join(reviews, "movietitle_fk", movies, "movietitle");

  // Appendix-B field order (the dataset's "original" layout).
  Dataset d;
  d.name = "Movies";
  d.table = joined.project(std::vector<std::string>{
      "genres", "movieinfo", "movietitle_fk", "productioncompany",
      "reviewcontent", "reviewtype", "rottentomatoeslink", "topcritic"});
  // Restore the paper's field name for the join key column.
  {
    std::vector<table::Field> fields = d.table.schema().fields();
    fields[2].name = "movietitle";
    table::Table renamed{table::Schema(fields)};
    for (std::size_t r = 0; r < d.table.num_rows(); ++r)
      renamed.append_row(d.table.row(r));
    d.table = std::move(renamed);
  }

  d.fds.add_group({"movieinfo", "movietitle", "rottentomatoeslink"});

  // Filter task truth: "is this movie suitable for kids?" — a property of
  // the movie, decided from its metadata.
  d.label_choices = {"Yes", "No"};
  d.key_field = "movieinfo";
  const std::size_t info_col = d.table.schema().require("movieinfo");
  const std::size_t type_col = d.table.schema().require("reviewtype");
  const std::size_t review_col = d.table.schema().require("reviewcontent");
  for (std::size_t r = 0; r < d.table.num_rows(); ++r) {
    d.truth.push_back(detail::pick_label(d.table.cell(r, info_col), 0x1D5,
                                         d.label_choices, {2, 3}));
    // Sentiment / score channels (multi-LLM stage 1 and aggregation):
    // review sentiment tracks the critic's Fresh/Rotten verdict.
    const bool fresh = d.table.cell(r, type_col) == "Fresh";
    d.sentiment_truth.emplace_back(fresh ? "POSITIVE" : "NEGATIVE");
    const std::string& review = d.table.cell(r, review_col);
    d.score_truth.push_back(
        fresh ? detail::pick_label(review, 0x5C0, {"3", "4", "5"}, {1, 2, 2})
              : detail::pick_label(review, 0x5C0, {"1", "2", "3"}, {2, 2, 1}));
  }
  return d;
}

}  // namespace llmq::data
