#include "data/benchmark_suite.hpp"

#include <stdexcept>

namespace llmq::data {

std::string to_string(QueryType t) {
  switch (t) {
    case QueryType::Filter: return "filter";
    case QueryType::Projection: return "projection";
    case QueryType::MultiLlm: return "multi-llm";
    case QueryType::Aggregation: return "aggregation";
    case QueryType::Rag: return "rag";
  }
  return "?";
}

namespace {

// Paper Appendix C system prompt (shared by every query).
const char* kSystemPrompt =
    "You are a data analyst. Use the provided JSON data to answer the user "
    "query based on the specified fields. Respond with only the answer, no "
    "extra formatting.";

std::vector<QuerySpec> build_suite() {
  std::vector<QuerySpec> qs;

  auto add = [&](QuerySpec q) { qs.push_back(std::move(q)); };

  // ---------- T1: LLM filter (5 queries) ----------
  {
    QuerySpec q;
    q.id = "movies-filter";
    q.dataset = "movies";
    q.type = QueryType::Filter;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Given the following fields, answer in one word, 'Yes' or 'No', "
        "whether the movie would be suitable for kids. Answer with ONLY "
        "'Yes' or 'No'.";
    q.stage1.avg_output_tokens = 2;
    q.stage1.answers = {"Yes", "No"};
    q.position_sensitivity = 0.12;
    add(q);
  }
  {
    QuerySpec q;
    q.id = "products-filter";
    q.dataset = "products";
    q.type = QueryType::Filter;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Given the following fields determine if the review speaks "
        "positively ('POSITIVE'), negatively ('NEGATIVE'), or netural "
        "('NEUTRAL') about the product. Answer only 'POSITIVE', 'NEGATIVE', "
        "or 'NEUTRAL', nothing else.";
    q.stage1.avg_output_tokens = 3;
    q.stage1.answers = {"POSITIVE", "NEGATIVE", "NEUTRAL"};
    q.position_sensitivity = 0.1;
    add(q);
  }
  {
    QuerySpec q;
    q.id = "bird-filter";
    q.dataset = "bird";
    q.type = QueryType::Filter;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Given the following fields related to posts in an online codebase "
        "community, answer whether the post is related to statistics. "
        "Answer with only 'YES' or 'NO'.";
    q.stage1.avg_output_tokens = 2;
    q.stage1.answers = {"YES", "NO"};
    q.position_sensitivity = 0.08;
    add(q);
  }
  {
    QuerySpec q;
    q.id = "pdmx-filter";
    q.dataset = "pdmx";
    q.type = QueryType::Filter;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Based on following fields, answer 'YES' or 'NO' if any of the song "
        "information references a specific individual. Answer only 'YES' or "
        "'NO', nothing else.";
    q.stage1.avg_output_tokens = 2;
    q.stage1.answers = {"YES", "NO"};
    q.position_sensitivity = 0.02;
    add(q);
  }
  {
    QuerySpec q;
    q.id = "beer-filter";
    q.dataset = "beer";
    q.type = QueryType::Filter;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Based on the beer descriptions, does this beer have European "
        "origin? Answer 'YES' if it does or 'NO' if it doesn't.";
    q.stage1.avg_output_tokens = 2;
    q.stage1.answers = {"YES", "NO"};
    q.position_sensitivity = 0.08;
    add(q);
  }

  // ---------- T2: LLM projection (5 queries) ----------
  {
    QuerySpec q;
    q.id = "movies-projection";
    q.dataset = "movies";
    q.type = QueryType::Projection;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Given information including movie descriptions and critic reviews, "
        "summarize the good qualities in this movie that led to a favorable "
        "rating.";
    q.stage1.fields = {"reviewcontent", "movieinfo"};
    q.stage1.avg_output_tokens = 29;
    add(q);
  }
  {
    QuerySpec q;
    q.id = "products-projection";
    q.dataset = "products";
    q.type = QueryType::Projection;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Given the following fields related to amazon products, summarize "
        "the product, then answer whether the product description is "
        "consistent with the quality expressed in the review.";
    q.stage1.avg_output_tokens = 107;
    add(q);
  }
  {
    QuerySpec q;
    q.id = "bird-projection";
    q.dataset = "bird";
    q.type = QueryType::Projection;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Given the following fields related to posts in an online codebase "
        "community, summarize how the comment Text related to the post "
        "body.";
    q.stage1.avg_output_tokens = 43;
    add(q);
  }
  {
    QuerySpec q;
    q.id = "pdmx-projection";
    q.dataset = "pdmx";
    q.type = QueryType::Projection;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Given the following fields, provide an overview on the music type, "
        "and analyze the given scores. Give exactly 50 words of summary.";
    q.stage1.avg_output_tokens = 72;
    add(q);
  }
  {
    QuerySpec q;
    q.id = "beer-projection";
    q.dataset = "beer";
    q.type = QueryType::Projection;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Given the following fields, provide an high-level overview on the "
        "beer and review in a 20 words paragraph.";
    q.stage1.avg_output_tokens = 38;
    add(q);
  }

  // ---------- T3: Multi-LLM invocation (2 queries) ----------
  {
    QuerySpec q;
    q.id = "movies-multi";
    q.dataset = "movies";
    q.type = QueryType::MultiLlm;
    q.system_prompt = kSystemPrompt;
    // Stage 1: sentiment filter over the (distinct) review text only.
    q.stage1.user_prompt =
        "Given the following review, answer whether the sentiment "
        "associated is 'POSITIVE' or 'NEGATIVE'. Answer in all caps with "
        "ONLY 'POSITIVE' or 'NEGATIVE':";
    q.stage1.fields = {"reviewcontent"};
    q.stage1.avg_output_tokens = 2;
    q.stage1.answers = {"POSITIVE", "NEGATIVE"};
    q.stage1.truth_key = "sentiment";
    StageSpec s2;
    s2.user_prompt =
        "Given the information about a movie, summarize the good qualities "
        "that led to a favorable rating.";
    s2.fields = {"reviewtype", "reviewcontent", "movieinfo", "genres"};
    s2.avg_output_tokens = 29;
    q.stage2 = s2;
    add(q);
  }
  {
    QuerySpec q;
    q.id = "products-multi";
    q.dataset = "products";
    q.type = QueryType::MultiLlm;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Given the following review, answer whether the sentiment "
        "associated is 'POSITIVE' or 'NEGATIVE'. Answer in all caps with "
        "ONLY 'POSITIVE' or 'NEGATIVE':";
    q.stage1.fields = {"text"};
    q.stage1.avg_output_tokens = 2;
    q.stage1.answers = {"POSITIVE", "NEGATIVE"};
    q.stage1.truth_key = "sentiment";
    StageSpec s2;
    s2.user_prompt =
        "Given the following fields related to amazon products, summarize "
        "the product, then answer whether the product description is "
        "consistent with the quality expressed in the review.";
    s2.avg_output_tokens = 107;
    q.stage2 = s2;
    add(q);
  }

  // ---------- T4: LLM aggregation (2 queries) ----------
  {
    QuerySpec q;
    q.id = "movies-aggregation";
    q.dataset = "movies";
    q.type = QueryType::Aggregation;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Given the following fields of a movie description and a user "
        "review, assign a sentiment score for the review out of 5. Answer "
        "with ONLY a single integer between 1 (bad) and 5 (good).";
    q.stage1.fields = {"reviewcontent", "movieinfo"};
    q.stage1.avg_output_tokens = 2;
    q.stage1.answers = {"1", "2", "3", "4", "5"};
    q.stage1.truth_key = "score";
    add(q);
  }
  {
    QuerySpec q;
    q.id = "products-aggregation";
    q.dataset = "products";
    q.type = QueryType::Aggregation;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Given the following fields of a product description and a user "
        "review, assign a sentiment score for the review out of 5. Answer "
        "with ONLY a single integer between 1 (bad) and 5 (good).";
    q.stage1.fields = {"text", "description"};
    q.stage1.avg_output_tokens = 2;
    q.stage1.answers = {"1", "2", "3", "4", "5"};
    q.stage1.truth_key = "score";
    add(q);
  }

  // ---------- T5: RAG (2 queries) ----------
  {
    QuerySpec q;
    q.id = "fever-rag";
    q.dataset = "fever";
    q.type = QueryType::Rag;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "You are given 4 pieces of evidence as {evidence1}, {evidence2}, "
        "{evidence3}, and {evidence4}. You are also given a claim as "
        "{claim}. Answer SUPPORTS if the pieces of evidence support the "
        "given {claim}, REFUTES if the evidence refutes the given {claim}, "
        "or NOT ENOUGH INFO if there is not enough information to answer. "
        "Your answer should just be SUPPORTS, REFUTES, or NOT ENOUGH INFO "
        "and nothing else.";
    q.stage1.avg_output_tokens = 3;
    q.stage1.answers = {"SUPPORTS", "REFUTES", "NOT ENOUGH INFO"};
    // Paper §6.4: Llama3-8B accuracy on FEVER moves +14.2% when the claim
    // field lands at the end of the prompt — the strongest positional
    // effect in the study. 0.15 sensitivity x 1.0 susceptibility gives the
    // 8B profile a ~15-point first-to-last swing.
    q.position_sensitivity = 0.15;
    add(q);
  }
  {
    QuerySpec q;
    q.id = "squad-rag";
    q.dataset = "squad";
    q.type = QueryType::Rag;
    q.system_prompt = kSystemPrompt;
    q.stage1.user_prompt =
        "Given a question and supporting contexts, answer the provided "
        "question.";
    q.stage1.avg_output_tokens = 11;
    add(q);
  }

  return qs;
}

}  // namespace

const std::vector<QuerySpec>& benchmark_queries() {
  static const std::vector<QuerySpec> suite = build_suite();
  return suite;
}

std::vector<QuerySpec> queries_of_type(QueryType t) {
  std::vector<QuerySpec> out;
  for (const auto& q : benchmark_queries())
    if (q.type == t) out.push_back(q);
  return out;
}

const QuerySpec& query_by_id(const std::string& id) {
  for (const auto& q : benchmark_queries())
    if (q.id == id) return q;
  throw std::invalid_argument("unknown benchmark query id: " + id);
}

}  // namespace llmq::data
