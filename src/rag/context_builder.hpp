#pragma once
// RAG table construction (paper §6.2 "RAG").
//
// The paper embeds all supporting contexts into a vector index, retrieves
// the top-k contexts per question, and forms a table of
// (question, context1..contextk) that the reordering planner then
// optimizes — multiple questions often retrieve the *same* contexts, which
// is the sharing GGR exploits. This module reproduces that pipeline.

#include <string>
#include <vector>

#include "rag/vector_index.hpp"
#include "table/table.hpp"

namespace llmq::rag {

struct RagTableOptions {
  std::size_t k = 4;                       // contexts per question
  std::string question_field = "claim";    // name for the question column
  std::string context_prefix = "evidence"; // context columns: prefix1..k
  bool question_first = true;              // original field order
};

/// Retrieve top-k contexts for every question and assemble the LLM input
/// table. Row order matches `questions`; field order puts the question
/// first (the dataset's "original" layout) unless configured otherwise.
table::Table build_rag_table(const VectorIndex& index,
                             const std::vector<std::string>& questions,
                             const RagTableOptions& options);

}  // namespace llmq::rag
