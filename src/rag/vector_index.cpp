#include "rag/vector_index.hpp"

#include <algorithm>

namespace llmq::rag {

VectorIndex::VectorIndex(Embedder embedder) : embedder_(std::move(embedder)) {}

std::size_t VectorIndex::add(std::string text) {
  vectors_.push_back(embedder_.embed(text));
  docs_.push_back(std::move(text));
  return docs_.size() - 1;
}

std::vector<VectorIndex::Hit> VectorIndex::search(std::string_view query,
                                                  std::size_t k) const {
  const Embedding q = embedder_.embed(query);
  std::vector<Hit> hits;
  hits.reserve(vectors_.size());
  for (std::size_t i = 0; i < vectors_.size(); ++i)
    hits.push_back(Hit{i, cosine_similarity(q, vectors_[i])});
  const std::size_t want = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + static_cast<std::ptrdiff_t>(want),
                    hits.end(), [](const Hit& a, const Hit& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  hits.resize(want);
  return hits;
}

}  // namespace llmq::rag
