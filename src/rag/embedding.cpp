#include "rag/embedding.hpp"

#include <cmath>

#include "tokenizer/tokenizer.hpp"
#include "util/rng.hpp"

namespace llmq::rag {

Embedder::Embedder(std::size_t dim, std::uint64_t seed)
    : dim_(dim), seed_(seed) {}

Embedding Embedder::embed(std::string_view text) const {
  Embedding v(dim_, 0.0f);
  const auto tokens = tokenizer::global_tokenizer().encode(text);
  for (auto t : tokens) {
    const std::uint64_t h = util::hash_combine(seed_, t);
    const std::size_t slot = h % dim_;
    const float sign = (h >> 63) ? 1.0f : -1.0f;
    v[slot] += sign;
  }
  double norm = 0.0;
  for (float x : v) norm += static_cast<double>(x) * x;
  if (norm > 0.0) {
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm));
    for (float& x : v) x *= inv;
  }
  return v;
}

float cosine_similarity(const Embedding& a, const Embedding& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

}  // namespace llmq::rag
