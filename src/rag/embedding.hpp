#pragma once
// Text embeddings via feature hashing.
//
// Stand-in for the paper's gte-base-en-v1.5 encoder: tokens are hashed
// into a fixed-dimension vector with deterministic signs, L2-normalized.
// Identical texts embed identically and texts sharing vocabulary are
// close — the two properties the RAG experiment needs (repeated retrieval
// of the same evidence across related questions).

#include <string_view>
#include <vector>

namespace llmq::rag {

using Embedding = std::vector<float>;

class Embedder {
 public:
  explicit Embedder(std::size_t dim = 256, std::uint64_t seed = 0x9e37);

  std::size_t dim() const { return dim_; }

  /// Deterministic, L2-normalized embedding of `text`.
  Embedding embed(std::string_view text) const;

 private:
  std::size_t dim_;
  std::uint64_t seed_;
};

/// Cosine similarity (inputs need not be normalized).
float cosine_similarity(const Embedding& a, const Embedding& b);

}  // namespace llmq::rag
