#pragma once
// Exact K-nearest-neighbor vector index (FAISS stand-in, paper §6.2 RAG).
//
// Brute-force cosine search with deterministic tie-breaking. At benchmark
// scale (tens of thousands of passages, hundreds of dims) exact search is
// fast enough and removes approximation noise from the experiments.

#include <cstdint>
#include <string>
#include <vector>

#include "rag/embedding.hpp"

namespace llmq::rag {

class VectorIndex {
 public:
  explicit VectorIndex(Embedder embedder);

  /// Add a document; returns its index id. The text is retained so
  /// retrieval results can be materialized into prompt contexts.
  std::size_t add(std::string text);

  std::size_t size() const { return docs_.size(); }
  const std::string& document(std::size_t id) const { return docs_.at(id); }

  struct Hit {
    std::size_t id;
    float score;
  };

  /// Top-k by cosine similarity, descending; ties broken by lower id.
  std::vector<Hit> search(std::string_view query, std::size_t k) const;

 private:
  Embedder embedder_;
  std::vector<std::string> docs_;
  std::vector<Embedding> vectors_;
};

}  // namespace llmq::rag
