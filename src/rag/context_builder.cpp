#include "rag/context_builder.hpp"

namespace llmq::rag {

table::Table build_rag_table(const VectorIndex& index,
                             const std::vector<std::string>& questions,
                             const RagTableOptions& options) {
  std::vector<std::string> names;
  if (options.question_first) names.push_back(options.question_field);
  for (std::size_t i = 1; i <= options.k; ++i)
    names.push_back(options.context_prefix + std::to_string(i));
  if (!options.question_first) names.push_back(options.question_field);

  table::Table t(table::Schema::of_names(names));
  for (const auto& q : questions) {
    const auto hits = index.search(q, options.k);
    std::vector<std::string> row;
    row.reserve(options.k + 1);
    if (options.question_first) row.push_back(q);
    for (std::size_t i = 0; i < options.k; ++i) {
      if (i < hits.size())
        row.push_back(index.document(hits[i].id));
      else
        row.emplace_back();  // fewer than k documents indexed
    }
    if (!options.question_first) row.push_back(q);
    t.append_row(std::move(row));
  }
  return t;
}

}  // namespace llmq::rag
