#include "obs/trace.hpp"

namespace llmq::obs {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Enqueue: return "enqueue";
    case EventKind::Admit: return "admit";
    case EventKind::Defer: return "defer";
    case EventKind::PrefillChunk: return "prefill_chunk";
    case EventKind::FirstToken: return "first_token";
    case EventKind::DecodeStep: return "decode_step";
    case EventKind::Preempt: return "preempt";
    case EventKind::Resume: return "resume";
    case EventKind::Finish: return "finish";
    case EventKind::CacheLookup: return "cache_lookup";
    case EventKind::CacheAdmit: return "cache_admit";
    case EventKind::CacheRelease: return "cache_release";
    case EventKind::CacheCancelLookup: return "cache_cancel_lookup";
    case EventKind::CacheEvict: return "cache_evict";
    case EventKind::RouteDecision: return "route_decision";
    case EventKind::WindowPlan: return "window_plan";
    case EventKind::TurnSpawn: return "turn_spawn";
    case EventKind::TierDemote: return "tier_demote";
    case EventKind::TierPromote: return "tier_promote";
    case EventKind::ReplicaSpawn: return "replica_spawn";
    case EventKind::ReplicaDrain: return "replica_drain";
    case EventKind::PrefixMigrate: return "prefix_migrate";
  }
  return "unknown";
}

}  // namespace llmq::obs
