#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "util/json.hpp"

namespace llmq::obs {

namespace {

/// trace_event "pid" assignment: 0 is the driver (merged-clock) track,
/// replica r is pid r + 1 — Perfetto sorts processes by pid, which puts
/// the driver first and replicas in index order.
std::int64_t pid_of(std::uint32_t replica) {
  return replica == kGlobalTrack ? 0
                                 : static_cast<std::int64_t>(replica) + 1;
}

double to_us(double seconds) { return seconds * 1e6; }

void event_common(util::JsonWriter& w, const char* name, const char* ph,
                  const TraceEvent& e) {
  w.begin_object();
  w.key("name").value(name);
  w.key("ph").value(ph);
  w.key("pid").value(pid_of(e.replica));
  w.key("tid").value(std::int64_t{0});
  w.key("ts").value(to_us(e.time));
}

/// Async request-span events share one (cat, id) pair so Perfetto nests
/// the instants inside the span.
void async_common(util::JsonWriter& w, const char* name, const char* ph,
                  const TraceEvent& e) {
  event_common(w, name, ph, e);
  w.key("cat").value("request");
  w.key("id").value(static_cast<std::int64_t>(e.id));
}

void metadata_event(util::JsonWriter& w, std::int64_t pid,
                    const std::string& name) {
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(pid);
  w.key("tid").value(std::int64_t{0});
  w.key("args").begin_object();
  w.key("name").value(name);
  w.end_object();
  w.end_object();
}

void counter_event(util::JsonWriter& w, const char* name, std::int64_t pid,
                   double ts_us) {
  w.begin_object();
  w.key("name").value(name);
  w.key("ph").value("C");
  w.key("pid").value(pid);
  w.key("tid").value(std::int64_t{0});
  w.key("ts").value(ts_us);
  w.key("args").begin_object();
}

}  // namespace

std::string trace_to_jsonl(const TraceLog& log) {
  std::string out;
  out.reserve(log.size() * 96);
  for (const TraceEvent& e : log.events()) {
    util::JsonWriter w;
    w.begin_object();
    w.key("k").value(to_string(e.kind));
    w.key("t").value(e.time);
    w.key("r").value(static_cast<std::int64_t>(e.replica));
    w.key("cls").value(static_cast<std::int64_t>(e.cls));
    w.key("id").value(static_cast<std::int64_t>(e.id));
    w.key("a").value(static_cast<std::int64_t>(e.a));
    w.key("b").value(static_cast<std::int64_t>(e.b));
    w.key("c").value(static_cast<std::int64_t>(e.c));
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

std::string perfetto_trace_json(const TraceLog& log,
                                const TimeSeries* timeseries) {
  util::JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  // Track metadata: every pid that will appear gets a readable name.
  std::vector<std::uint32_t> replicas;
  bool has_global = false;
  const auto note_track = [&](std::uint32_t r) {
    if (r == kGlobalTrack) {
      has_global = true;
      return;
    }
    if (std::find(replicas.begin(), replicas.end(), r) == replicas.end())
      replicas.push_back(r);
  };
  for (const TraceEvent& e : log.events()) note_track(e.replica);
  if (timeseries)
    for (const std::uint32_t r : timeseries->replica) note_track(r);
  std::sort(replicas.begin(), replicas.end());
  if (has_global) metadata_event(w, 0, "driver");
  for (const std::uint32_t r : replicas)
    metadata_event(w, pid_of(r), "replica " + std::to_string(r));

  for (const TraceEvent& e : log.events()) {
    switch (e.kind) {
      case EventKind::Enqueue: {
        async_common(w, "req", "b", e);
        w.key("args").begin_object();
        w.key("prompt_tokens").value(static_cast<std::int64_t>(e.a));
        w.key("output_tokens").value(static_cast<std::int64_t>(e.b));
        w.key("class").value(static_cast<std::int64_t>(e.cls));
        w.end_object();
        w.end_object();
        break;
      }
      case EventKind::Finish: {
        async_common(w, "req", "e", e);
        w.key("args").begin_object();
        w.key("output_tokens").value(static_cast<std::int64_t>(e.a));
        w.key("cached_tokens").value(static_cast<std::int64_t>(e.c));
        w.end_object();
        w.end_object();
        break;
      }
      case EventKind::Admit:
      case EventKind::FirstToken:
      case EventKind::Resume:
      case EventKind::PrefillChunk: {
        async_common(w, to_string(e.kind), "n", e);
        w.key("args").begin_object();
        w.key("a").value(static_cast<std::int64_t>(e.a));
        w.key("b").value(static_cast<std::int64_t>(e.b));
        w.key("c").value(static_cast<std::int64_t>(e.c));
        w.end_object();
        w.end_object();
        break;
      }
      case EventKind::Preempt:
      case EventKind::Defer:
      case EventKind::CacheEvict:
      case EventKind::RouteDecision:
      case EventKind::WindowPlan:
      case EventKind::TurnSpawn:
      case EventKind::TierDemote:
      case EventKind::TierPromote:
      case EventKind::ReplicaSpawn:
      case EventKind::ReplicaDrain:
      case EventKind::PrefixMigrate: {
        event_common(w, to_string(e.kind), "i", e);
        w.key("s").value("t");  // thread-scoped instant
        w.key("args").begin_object();
        w.key("id").value(static_cast<std::int64_t>(e.id));
        w.key("a").value(static_cast<std::int64_t>(e.a));
        w.key("b").value(static_cast<std::int64_t>(e.b));
        w.key("c").value(static_cast<std::int64_t>(e.c));
        w.end_object();
        w.end_object();
        break;
      }
      case EventKind::DecodeStep: {
        counter_event(w, "decode_batch", pid_of(e.replica), to_us(e.time));
        w.key("batch").value(static_cast<std::int64_t>(e.a));
        w.end_object();
        w.end_object();
        break;
      }
      case EventKind::CacheLookup:
      case EventKind::CacheAdmit:
      case EventKind::CacheRelease:
      case EventKind::CacheCancelLookup:
        // Per-lookup cache traffic stays in the JSONL export; rendering
        // every pin/unpin as a Perfetto event drowns the request spans.
        break;
    }
  }

  if (timeseries) {
    for (std::size_t i = 0; i < timeseries->size(); ++i) {
      const std::int64_t pid = pid_of(timeseries->replica[i]);
      const double ts = to_us(timeseries->time[i]);
      counter_event(w, "kv_blocks", pid, ts);
      w.key("resident").value(
          static_cast<std::int64_t>(timeseries->kv_resident_blocks[i]));
      w.key("private").value(
          static_cast<std::int64_t>(timeseries->kv_private_blocks[i]));
      w.key("reserved").value(
          static_cast<std::int64_t>(timeseries->kv_reserved_blocks[i]));
      w.key("host").value(
          static_cast<std::int64_t>(timeseries->kv_host_blocks[i]));
      w.key("disk").value(
          static_cast<std::int64_t>(timeseries->kv_disk_blocks[i]));
      w.key("pinned").value(
          static_cast<std::int64_t>(timeseries->kv_pinned_blocks[i]));
      w.end_object();
      w.end_object();
      counter_event(w, "queue_depth", pid, ts);
      w.key("interactive").value(
          static_cast<std::int64_t>(timeseries->pending_interactive[i]));
      w.key("standard").value(
          static_cast<std::int64_t>(timeseries->pending_standard[i]));
      w.key("batch").value(
          static_cast<std::int64_t>(timeseries->pending_batch[i]));
      w.key("parked").value(static_cast<std::int64_t>(timeseries->parked[i]));
      w.end_object();
      w.end_object();
      counter_event(w, "running", pid, ts);
      w.key("prefill").value(
          static_cast<std::int64_t>(timeseries->running_prefill[i]));
      w.key("decode").value(
          static_cast<std::int64_t>(timeseries->running_decode[i]));
      w.end_object();
      w.end_object();
      counter_event(w, "rolling_phr", pid, ts);
      w.key("phr").value(timeseries->rolling_phr[i]);
      w.end_object();
      w.end_object();
      counter_event(w, "outstanding_prompt_tokens", pid, ts);
      w.key("tokens").value(static_cast<std::int64_t>(
          timeseries->outstanding_prompt_tokens[i]));
      w.end_object();
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  return w.take();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "[obs: could not write %s]\n", path.c_str());
    return false;
  }
  return true;
}

bool write_perfetto_trace(const std::string& path, const TraceLog& log,
                          const TimeSeries* timeseries) {
  return write_text_file(path, perfetto_trace_json(log, timeseries));
}

}  // namespace llmq::obs
