#include "obs/timeseries.hpp"

namespace llmq::obs {

void TimeSeries::append(double t, std::uint32_t r, const GaugeSample& g) {
  time.push_back(t);
  replica.push_back(r);
  kv_resident_blocks.push_back(g.kv_resident_blocks);
  kv_host_blocks.push_back(g.kv_host_blocks);
  kv_disk_blocks.push_back(g.kv_disk_blocks);
  kv_private_blocks.push_back(g.kv_private_blocks);
  kv_reserved_blocks.push_back(g.kv_reserved_blocks);
  kv_pinned_blocks.push_back(g.kv_pinned_blocks);
  pending_interactive.push_back(g.pending_by_class[0]);
  pending_standard.push_back(g.pending_by_class[1]);
  pending_batch.push_back(g.pending_by_class[2]);
  running_prefill.push_back(g.running_prefill);
  running_decode.push_back(g.running_decode);
  parked.push_back(g.parked);
  outstanding_prompt_tokens.push_back(g.outstanding_prompt_tokens);
  rolling_phr.push_back(g.rolling_phr);
}

}  // namespace llmq::obs
