#pragma once
// Virtual-time gauge sampling into a columnar buffer.
//
// A trace records transitions; the time series records *levels* — the
// gauges an operator would watch on a dashboard (KV pool occupancy,
// admission-queue depth per class, running prefill/decode counts, the
// rolling prefix hit rate, per-replica outstanding load). Drivers sample
// every replica on a configurable virtual-time interval
// (TraceConfig::sample_interval_seconds); the buffer is a struct of
// parallel column vectors so downstream tooling (and the Perfetto
// counter-track exporter) can slice one metric without touching the
// rest.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace llmq::obs {

/// One replica's instantaneous gauge snapshot (EngineSession::gauges()).
struct GaugeSample {
  std::uint64_t kv_resident_blocks = 0;  // shared cache-resident blocks
                                         // (every tier; GPU share is
                                         // resident - host - disk)
  std::uint64_t kv_host_blocks = 0;      // resident at the host tier
  std::uint64_t kv_disk_blocks = 0;      // resident at the disk tier
  std::uint64_t kv_private_blocks = 0;   // per-request private blocks
  std::uint64_t kv_reserved_blocks = 0;  // chunked-prefill reservations
  std::uint64_t kv_pinned_blocks = 0;    // cache blocks pinned by leases
  std::array<std::uint64_t, 3> pending_by_class = {0, 0, 0};
  std::uint64_t running_prefill = 0;  // admitted, still chunk-prefilling
  std::uint64_t running_decode = 0;   // admitted, decoding
  std::uint64_t parked = 0;           // preempted, awaiting resume
  std::uint64_t outstanding_prompt_tokens = 0;
  double rolling_phr = 0.0;  // cumulative prefix hit rate so far

  std::uint64_t kv_used_blocks() const {
    return kv_resident_blocks + kv_private_blocks + kv_reserved_blocks;
  }
};

/// Columnar sample buffer: row i is (time[i], replica[i], gauges...).
/// Rows are appended in nondecreasing time order, one row per replica
/// per sample instant.
class TimeSeries {
 public:
  void append(double time, std::uint32_t replica, const GaugeSample& g);

  std::size_t size() const { return time.size(); }
  bool empty() const { return time.empty(); }

  std::vector<double> time;
  std::vector<std::uint32_t> replica;
  std::vector<std::uint64_t> kv_resident_blocks;
  std::vector<std::uint64_t> kv_host_blocks;
  std::vector<std::uint64_t> kv_disk_blocks;
  std::vector<std::uint64_t> kv_private_blocks;
  std::vector<std::uint64_t> kv_reserved_blocks;
  std::vector<std::uint64_t> kv_pinned_blocks;
  std::vector<std::uint64_t> pending_interactive;
  std::vector<std::uint64_t> pending_standard;
  std::vector<std::uint64_t> pending_batch;
  std::vector<std::uint64_t> running_prefill;
  std::vector<std::uint64_t> running_decode;
  std::vector<std::uint64_t> parked;
  std::vector<std::uint64_t> outstanding_prompt_tokens;
  std::vector<double> rolling_phr;
};

/// Interval gate shared by the drivers: fires when the virtual clock
/// crosses the next sample boundary, then skips ahead past `now` (an
/// idle gap yields one sample, not one per elapsed interval).
class SampleClock {
 public:
  SampleClock(TimeSeries* ts, double interval_seconds)
      : ts_(ts), interval_(interval_seconds) {}

  bool due(double now) const {
    return ts_ != nullptr && interval_ > 0.0 && now >= next_;
  }
  void advance_past(double now) {
    while (next_ <= now) next_ += interval_;
  }
  TimeSeries* series() const { return ts_; }
  bool sampling() const { return ts_ != nullptr && interval_ > 0.0; }
  /// The next boundary at which due() will fire. The threaded runtime
  /// cuts its epochs here so workers park exactly at the virtual times
  /// the single-threaded driver would have sampled at — that, plus the
  /// driver being the only thread that ever touches the TimeSeries (the
  /// clock itself is driver-owned and never shared), is what keeps the
  /// gauge columns bit-identical without making this class locked.
  double next_boundary() const { return next_; }

 private:
  TimeSeries* ts_;
  double interval_;
  double next_ = 0.0;
};

}  // namespace llmq::obs
