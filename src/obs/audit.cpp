#include "obs/audit.hpp"

#include <map>

namespace llmq::obs {

namespace {

/// Per-request replay state (keyed by request id; std::map so the
/// end-of-replay sweep — and therefore violation order — is
/// deterministic).
struct ReqState {
  bool enqueued = false;
  bool running = false;
  bool finished = false;
  std::uint32_t replica = 0;
  std::uint8_t cls = 0;
  std::uint64_t prompt = 0;
  std::size_t admits = 0;
  bool chunked = false;
  std::uint64_t cached = 0;
  std::uint64_t computed = 0;
  std::uint64_t recompute = 0;
  std::uint64_t first_cached = 0;
  std::uint64_t last_generated = 0;  // at the latest preemption
  std::uint64_t output = 0;          // Finish payload (turn chaining)
  std::int64_t routed_to = -1;       // RouteDecision target, if any
};

constexpr std::size_t kMaxRecorded = 64;

}  // namespace

AuditResult audit_trace(const TraceLog& log) {
  AuditResult out;
  out.events = log.size();

  const auto fail = [&out](std::string msg) {
    ++out.violation_count;
    if (out.violations.size() < kMaxRecorded)
      out.violations.push_back(std::move(msg));
  };
  const auto tag = [](const TraceEvent& e) {
    return std::string(to_string(e.kind)) + " id=" + std::to_string(e.id) +
           " t=" + std::to_string(e.time);
  };

  std::map<std::uint64_t, ReqState> reqs;
  std::map<std::uint32_t, double> track_time;
  // Session turn chaining: last spawned turn per session, and the floor
  // the child's Enqueue prompt must reach (parent prompt + output).
  std::map<std::uint64_t, std::uint64_t> session_last_turn;
  std::map<std::uint64_t, std::uint64_t> expected_child_prompt;
  std::uint64_t finish_output_sum = 0;
  std::int64_t last_window = -1;
  // Per-track lower-tier residency re-derived from demote/promote/evict
  // events (exactly-once tier transitions).
  std::map<std::uint32_t, std::uint64_t> lower_resident;
  // Active-replica count chained through ReplicaSpawn/ReplicaDrain; -1
  // until the first elasticity event seeds it.
  std::int64_t active_count = -1;

  for (const TraceEvent& e : log.events()) {
    // Monotone per-track clocks: replica tracks run on their session
    // clock, the global track on the merged driver clock; neither may
    // step backwards.
    auto [it, fresh] = track_time.emplace(e.replica, e.time);
    if (!fresh) {
      if (e.time < it->second)
        fail("clock went backwards on track " + std::to_string(e.replica) +
             ": " + tag(e));
      it->second = e.time;
    }

    switch (e.kind) {
      case EventKind::Enqueue: {
        ReqState& r = reqs[e.id];
        if (r.enqueued) {
          fail("duplicate enqueue: " + tag(e));
          break;
        }
        r.enqueued = true;
        r.replica = e.replica;
        r.cls = e.cls;
        r.prompt = e.a;
        if (r.routed_to >= 0 &&
            r.routed_to != static_cast<std::int64_t>(e.replica))
          fail("enqueued on a different replica than routed: " + tag(e));
        const auto xit = expected_child_prompt.find(e.id);
        if (xit != expected_child_prompt.end() && e.a < xit->second)
          fail("turn prompt shorter than parent prompt+output: " + tag(e));
        ++out.enqueued;
        break;
      }
      case EventKind::Admit: {
        ReqState& r = reqs[e.id];
        const bool resumed = (e.c & 1) != 0;
        const bool chunked = (e.c & 2) != 0;
        if (!r.enqueued || r.finished || r.replica != e.replica) {
          fail("admit without live enqueue on this track: " + tag(e));
          break;
        }
        if (r.running) fail("admitted twice without a preemption: " + tag(e));
        if (e.a > r.prompt) fail("cache hit exceeds prompt: " + tag(e));
        if (r.admits == 0) {
          if (resumed) fail("first admission marked resumed: " + tag(e));
          r.chunked = chunked;
          r.first_cached = e.a;
          r.cached += e.a;
          // Monolithic prefill computes the whole uncached suffix inside
          // admission; chunked mode books computed per chunk instead.
          if (!chunked) r.computed += r.prompt - e.a;
        } else {
          if (!resumed) fail("re-admission not marked resumed: " + tag(e));
          if (chunked != r.chunked)
            fail("prefill mode changed across admissions: " + tag(e));
          if (chunked) {
            // Chunked-resume cached rule: coverage past the request's
            // first-pass line (payload b) is served from cache and will
            // never be chunk-computed — book the difference once.
            if (e.a > e.b) r.cached += e.a - e.b;
          } else {
            // Monolithic resume replays the uncached suffix plus every
            // generated token as recompute.
            r.recompute += (r.prompt - e.a) + r.last_generated;
          }
        }
        r.running = true;
        ++r.admits;
        break;
      }
      case EventKind::Defer:
        // No ledger effect: the paired lookup's stats are undone by a
        // CacheCancelLookup (fresh) or CacheRelease (resume).
        break;
      case EventKind::PrefillChunk: {
        ReqState& r = reqs[e.id];
        if (!r.running || !r.chunked) {
          fail("prefill chunk outside a chunked admission: " + tag(e));
          break;
        }
        if (e.a != e.b + e.c)
          fail("chunk tokens != first-pass + replay: " + tag(e));
        r.computed += e.b;
        r.recompute += e.c;
        break;
      }
      case EventKind::FirstToken: {
        if (!reqs[e.id].running)
          fail("first token from a request not running: " + tag(e));
        break;
      }
      case EventKind::DecodeStep:
        out.output_tokens += e.a;
        break;
      case EventKind::Preempt: {
        ReqState& r = reqs[e.id];
        if (!r.running) {
          fail("preempt of a request not running: " + tag(e));
          break;
        }
        r.running = false;
        r.last_generated = e.a;
        ++out.preemptions;
        break;
      }
      case EventKind::Resume: {
        const ReqState& r = reqs[e.id];
        if (!r.enqueued || r.running || r.finished)
          fail("resume of a request not parked: " + tag(e));
        break;
      }
      case EventKind::Finish: {
        ReqState& r = reqs[e.id];
        if (!r.running) {
          fail("finish of a request not running: " + tag(e));
          break;
        }
        r.running = false;
        r.finished = true;
        if (e.b != r.prompt) fail("finish prompt mismatch: " + tag(e));
        if (e.c != r.first_cached)
          fail("finish first-admission cache mismatch: " + tag(e));
        r.output = e.a;
        finish_output_sum += e.a;
        ++out.finished;
        if (e.cls < out.per_class_finished.size())
          ++out.per_class_finished[e.cls];
        break;
      }
      case EventKind::CacheLookup:
        out.pin_balance += static_cast<std::int64_t>(e.c);
        if (e.cls == 0) {  // fresh lookup; resume probes count no stats
          ++out.cache_lookups;
          out.cache_hit_tokens += e.b;
        }
        break;
      case EventKind::CacheAdmit:
        out.pin_balance += static_cast<std::int64_t>(e.b) -
                           static_cast<std::int64_t>(e.c);
        out.cache_inserted_blocks += e.a;
        break;
      case EventKind::CacheRelease:
        out.pin_balance -= static_cast<std::int64_t>(e.a);
        break;
      case EventKind::CacheCancelLookup:
        // Stat undo for a deferred admission (the unpin arrives as its
        // own CacheRelease).
        --out.cache_lookups;
        out.cache_hit_tokens -= e.b;
        break;
      case EventKind::CacheEvict:
        out.cache_evicted_blocks += e.a;
        if (e.b > 0) {  // bottom-tier overflow death on a tiered cache
          std::uint64_t& low = lower_resident[e.replica];
          if (e.a > low) {
            fail("lower-tier eviction exceeds demoted residency: " + tag(e));
            low = 0;
          } else {
            low -= e.a;
          }
          out.tier_evicted_blocks += e.a;
        }
        break;
      case EventKind::TierDemote: {
        if (e.a == 0) fail("tier demote of zero blocks: " + tag(e));
        if (e.b != e.c + 1 || e.b > 2)
          fail("tier demote not one tier down: " + tag(e));
        if (e.c == 0) {  // GPU -> host enters the lower tiers
          lower_resident[e.replica] += e.a;
          out.tier_demoted_blocks += e.a;
        }
        break;
      }
      case EventKind::TierPromote: {
        const std::uint64_t up = e.a + e.b;
        if (up == 0) fail("tier promote of zero blocks: " + tag(e));
        std::uint64_t& low = lower_resident[e.replica];
        if (up > low) {
          fail("promoted blocks were never demoted on this track: " + tag(e));
          low = 0;
        } else {
          low -= up;
        }
        out.tier_promoted_blocks += up;
        break;
      }
      case EventKind::ReplicaSpawn: {
        if (e.replica != kGlobalTrack)
          fail("replica spawn off the global track: " + tag(e));
        if (active_count >= 0 &&
            static_cast<std::int64_t>(e.a) != active_count + 1)
          fail("replica spawn does not chain the active count: " + tag(e));
        active_count = static_cast<std::int64_t>(e.a);
        ++out.replica_spawns;
        break;
      }
      case EventKind::ReplicaDrain: {
        if (e.replica != kGlobalTrack)
          fail("replica drain off the global track: " + tag(e));
        if (active_count >= 0 &&
            static_cast<std::int64_t>(e.a) != active_count - 1)
          fail("replica drain does not chain the active count: " + tag(e));
        if (e.a == 0) fail("replica drain left zero active replicas: " + tag(e));
        active_count = static_cast<std::int64_t>(e.a);
        ++out.replica_drains;
        break;
      }
      case EventKind::PrefixMigrate: {
        if (e.replica != kGlobalTrack)
          fail("prefix migrate off the global track: " + tag(e));
        if (e.a == 0) fail("prefix migrate of zero blocks: " + tag(e));
        if (e.b == e.c)
          fail("prefix migrate donor == recipient: " + tag(e));
        ++out.prefix_migrations;
        out.migrated_blocks += e.a;
        break;
      }
      case EventKind::RouteDecision: {
        if (e.replica != kGlobalTrack)
          fail("route decision off the global track: " + tag(e));
        reqs[e.id].routed_to = static_cast<std::int64_t>(e.a);
        ++out.route_decisions;
        break;
      }
      case EventKind::WindowPlan: {
        if (e.replica != kGlobalTrack)
          fail("window plan off the global track: " + tag(e));
        if (static_cast<std::int64_t>(e.id) <= last_window)
          fail("window ordinal not increasing: " + tag(e));
        last_window = static_cast<std::int64_t>(e.id);
        ++out.windows;
        break;
      }
      case EventKind::TurnSpawn: {
        // Payload: id=child request id, a=session, b=turn, c=parent id.
        if (e.replica != kGlobalTrack)
          fail("turn spawn off the global track: " + tag(e));
        const auto pit = reqs.find(e.c);
        if (pit == reqs.end() || !pit->second.finished)
          fail("turn spawn before its parent finished: " + tag(e));
        const auto cit = reqs.find(e.id);
        if (cit != reqs.end() && cit->second.enqueued)
          fail("turn spawn after its child enqueued: " + tag(e));
        auto [sit, sfresh] = session_last_turn.emplace(e.a, e.b);
        if (sfresh) {
          if (e.b != 1)
            fail("session's first spawned turn is not 1: " + tag(e));
        } else if (e.b != sit->second + 1) {
          fail("session turns not spawned contiguously: " + tag(e));
        } else {
          sit->second = e.b;
        }
        if (pit != reqs.end() && pit->second.finished)
          expected_child_prompt[e.id] =
              pit->second.prompt + pit->second.output;
        ++out.turn_spawns;
        break;
      }
    }
  }

  for (const auto& [id, r] : reqs) {
    if (!r.enqueued) continue;  // RouteDecision-only entry
    if (r.admits > 0) {
      // Engine booking rule: prompt/cached counters book at first
      // admission; never-admitted requests appear in no ledger.
      out.prompt_tokens += r.prompt;
      out.cached_prompt_tokens += r.cached;
      out.computed_prompt_tokens += r.computed;
      out.recompute_tokens += r.recompute;
    }
    if (!r.finished) {
      ++out.unfinished;
      continue;
    }
    if (r.cached + r.computed != r.prompt)
      fail("cached + computed != prompt for id " + std::to_string(id) +
           " (" + std::to_string(r.cached) + " + " +
           std::to_string(r.computed) + " != " + std::to_string(r.prompt) +
           ")");
  }
  if (out.unfinished == 0) {
    if (out.pin_balance != 0)
      fail("pin ledger unbalanced at quiescence: " +
           std::to_string(out.pin_balance));
    if (finish_output_sum != out.output_tokens)
      fail("decoded tokens != finished output tokens (" +
           std::to_string(out.output_tokens) + " != " +
           std::to_string(finish_output_sum) + ")");
  }
  return out;
}

}  // namespace llmq::obs
