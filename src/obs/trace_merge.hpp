#pragma once
// Deterministic merge of per-thread trace buffers into one canonical
// stream.
//
// The threaded fleet runtime gives every worker thread a private TraceLog
// (no locks on the emission hot path) and has the driver stitch the
// buffers back into the exact event order the single-threaded
// virtual-clock run would have produced — trace bytes stay canonical, so
// golden traces and the replay auditor work unchanged on threaded runs.
//
// The merger is an ordered FIFO of slots, each slot holding zero or more
// events:
//
//   - emit()/append(): a slot whose events are known now (driver-side
//     events such as WindowPlan and RouteDecision, or worker step spans
//     already merged into virtual-time order). The merger IS a TraceSink
//     so driver-side components (the window scheduler) bind to it
//     directly.
//   - placeholder(key): a slot whose events a worker will produce later
//     (the Enqueue a replica emits when it processes a Submit). The
//     driver reserves the slot at dispatch, in dispatch order; the worker
//     fills it — keyed by request id — at the next barrier.
//
// Slots flush to the downstream sink strictly in reservation order, a
// filled slot only after every slot before it: the output order depends
// only on the driver's reservation sequence, never on worker timing.
//
// Threading contract: the merger is driver-only. Workers never touch it;
// they write their private TraceLog, and the driver reads those buffers
// only at epoch barriers while the workers are parked (the report-queue
// handoff provides the happens-before edge).

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace llmq::obs {

class OrderedTraceMerger final : public TraceSink {
 public:
  /// `out` may be null, which turns every operation into a no-op (the
  /// untraced path stays one branch per call).
  explicit OrderedTraceMerger(TraceSink* out) : out_(out) {}

  bool enabled() const { return out_ != nullptr; }

  /// Ready slot with a single event (TraceSink interface).
  void emit(const TraceEvent& e) override {
    if (!out_) return;
    if (slots_.empty() && pending_.empty()) {
      out_->emit(e);  // nothing buffered: pass straight through
      return;
    }
    Slot s;
    s.ready = true;
    s.events.push_back(e);
    slots_.push_back(std::move(s));
  }

  /// Ready slot with a span of events already in final relative order.
  void append(const TraceEvent* begin, const TraceEvent* end) {
    if (!out_ || begin == end) return;
    if (slots_.empty() && pending_.empty()) {
      for (const TraceEvent* p = begin; p != end; ++p) out_->emit(*p);
      return;
    }
    Slot s;
    s.ready = true;
    s.events.assign(begin, end);
    slots_.push_back(std::move(s));
  }

  /// Reserve a slot to be filled later via fill(key, ...). Keys must be
  /// unique among outstanding placeholders (request ids are).
  void placeholder(std::uint64_t key) {
    if (!out_) return;
    Slot s;
    s.ready = false;
    slots_.push_back(std::move(s));
    pending_.emplace(key, base_ + slots_.size() - 1);
  }

  /// Fill a reserved slot; flushes any newly-contiguous ready prefix.
  void fill(std::uint64_t key, const TraceEvent* begin,
            const TraceEvent* end) {
    if (!out_) return;
    auto it = pending_.find(key);
    if (it == pending_.end()) return;  // unreserved key: drop, tests catch
    Slot& s = slots_[it->second - base_];
    s.events.assign(begin, end);
    s.ready = true;
    pending_.erase(it);
    flush_ready_prefix();
  }

  /// Placeholders still awaiting fill() — zero at every quiesced barrier.
  std::size_t pending() const { return pending_.size(); }

  /// Flush everything flushable. With no pending placeholders (the normal
  /// end-of-run state) this drains the merger completely.
  void finish() { flush_ready_prefix(); }

 private:
  struct Slot {
    bool ready = false;
    std::vector<TraceEvent> events;
  };

  void flush_ready_prefix() {
    while (!slots_.empty() && slots_.front().ready) {
      for (const TraceEvent& e : slots_.front().events) out_->emit(e);
      slots_.pop_front();
      ++base_;
    }
  }

  TraceSink* out_;
  std::deque<Slot> slots_;
  /// key -> absolute slot sequence number (monotone; front slot = base_).
  std::unordered_map<std::uint64_t, std::size_t> pending_;
  std::size_t base_ = 0;
};

}  // namespace llmq::obs
