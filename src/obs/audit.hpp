#pragma once
// Trace-driven invariant auditor.
//
// audit_trace() replays a TraceLog and independently re-derives the
// exactly-once ledgers the property-test suite pins against engine
// counters — from the events alone, with no access to engine state:
//
//   * per-track monotone virtual clocks (replica tracks and the driver's
//     global track each never step backwards);
//   * request lifecycle: exactly one Enqueue per id, a first admission
//     that is not a resume, resumes only after a preemption, at most one
//     Finish;
//   * the cached/computed prompt ledger: for every finished request,
//     cached + computed == prompt — under monolithic prefill computed is
//     prompt minus the first admission's cache hit; under chunking it is
//     the sum of first-pass chunk tokens, with the chunked-resume rule
//     (a resume whose cache coverage passed the request's first-pass
//     line books the difference as cached) replayed event-for-event;
//   * recompute attribution: replayed chunk tokens plus monolithic
//     resume prefills equal the engine's recompute counter;
//   * decode conservation: every decoded token belongs to a request that
//     eventually finishes, so summed DecodeStep batches equal summed
//     Finish outputs once nothing is left unfinished;
//   * the cache pin ledger: pins handed out by lookups and admissions
//     balance the unpins of releases (zero outstanding at quiescence);
//   * session turn chaining: a TurnSpawn rides the global track, names a
//     parent that already finished, spawns each session's turns
//     contiguously (1, 2, 3, ...) exactly once, and the child's later
//     Enqueue must carry a prompt at least the parent's prompt + output
//     (a follow-up extends its own history, never truncates it);
//   * exactly-once lookup stats: counted lookups are fresh lookups minus
//     deferred-admission cancellations, never resume probes;
//   * exactly-once tier transitions: per track, blocks promoted to (or
//     bottom-evicted from) a lower tier never exceed blocks demoted into
//     the lower tiers, and an intra-lower demotion (host -> disk) steps
//     exactly one tier down;
//   * elasticity chaining: every ReplicaSpawn / ReplicaDrain advances the
//     fleet's active count by exactly +-1 from the previous event, and a
//     PrefixMigrate moves a positive block count between two distinct
//     replicas on the global track.
//
// The re-derived totals are exposed so tests can equate them with
// EngineMetrics; a future threaded runtime is validated by running this
// same auditor over its trace and diffing against the simulated oracle.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace llmq::obs {

struct AuditResult {
  /// Human-readable invariant violations, in detection order (capped;
  /// `violation_count` keeps the true total). Empty == the trace proves
  /// the ledgers.
  std::vector<std::string> violations;
  std::size_t violation_count = 0;

  std::size_t events = 0;
  std::size_t enqueued = 0;
  std::size_t finished = 0;
  std::size_t unfinished = 0;  // enqueued, no Finish (partial trace)
  std::array<std::size_t, 3> per_class_finished = {0, 0, 0};

  // Re-derived engine ledgers (admitted requests only, like the engine's
  // first-admission booking rule).
  std::uint64_t prompt_tokens = 0;
  std::uint64_t cached_prompt_tokens = 0;
  std::uint64_t computed_prompt_tokens = 0;
  std::uint64_t output_tokens = 0;  // summed DecodeStep batches
  std::uint64_t recompute_tokens = 0;
  std::uint64_t preemptions = 0;

  // Re-derived cache ledgers.
  std::uint64_t cache_lookups = 0;     // counted (fresh minus cancelled)
  std::uint64_t cache_hit_tokens = 0;  // counted hit tokens
  std::uint64_t cache_inserted_blocks = 0;
  std::uint64_t cache_evicted_blocks = 0;
  std::int64_t pin_balance = 0;  // pins minus unpins; 0 at quiescence

  // Re-derived tier ledgers (all zero on a flat-cache trace): every
  // promoted or bottom-evicted lower-tier block must earlier have been
  // demoted out of the GPU tier on the same track — the exactly-once
  // tier-transition rule.
  std::uint64_t tier_demoted_blocks = 0;   // GPU -> lower transitions
  std::uint64_t tier_promoted_blocks = 0;  // lower -> GPU transitions
  std::uint64_t tier_evicted_blocks = 0;   // died at a lower tier

  // Elasticity events: ReplicaSpawn/ReplicaDrain must chain the active
  // count (+1 / -1 per event); PrefixMigrate must move a positive block
  // count between two distinct replicas.
  std::size_t replica_spawns = 0;
  std::size_t replica_drains = 0;
  std::size_t prefix_migrations = 0;
  std::uint64_t migrated_blocks = 0;

  std::size_t windows = 0;
  std::size_t route_decisions = 0;
  std::size_t turn_spawns = 0;

  bool ok() const { return violation_count == 0; }
  std::string first_violation() const {
    return violations.empty() ? std::string() : violations.front();
  }
};

AuditResult audit_trace(const TraceLog& log);

}  // namespace llmq::obs
