#pragma once
// Trace exporters: compact JSONL and Chrome/Perfetto trace_event JSON.
//
// JSONL is the canonical byte-level serialization — one compact JSON
// object per event, in emission order, every field verbatim. Because the
// serving stack is deterministic and the writer formats doubles with a
// fixed "%.17g" round-trip format, the JSONL bytes of two identical runs
// are bit-identical (the determinism tests compare exactly these bytes).
//
// The Perfetto export targets ui.perfetto.dev / chrome://tracing: a
// {"traceEvents": [...]} envelope in the trace_event format, with one
// process (track) per replica plus a "driver" track for merged-clock
// events (window plans, route decisions), an async span per request
// (Enqueue -> Finish, with Admit/FirstToken/Resume as nested instants),
// thread instants for preemptions/defers/evictions, and counter tracks
// from the sampled TimeSeries. Virtual seconds map to microseconds (the
// trace_event "ts" unit).

#include <string>

#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace llmq::obs {

/// One compact JSON object per event, "\n"-terminated, emission order.
std::string trace_to_jsonl(const TraceLog& log);

/// Chrome/Perfetto trace_event JSON ({"traceEvents": [...]}) for the
/// event log plus optional sampled counter tracks.
std::string perfetto_trace_json(const TraceLog& log,
                                const TimeSeries* timeseries = nullptr);

/// Write `content` to `path`; false (with a note to stderr) on failure.
bool write_text_file(const std::string& path, const std::string& content);

/// Convenience: perfetto_trace_json -> file.
bool write_perfetto_trace(const std::string& path, const TraceLog& log,
                          const TimeSeries* timeseries = nullptr);

}  // namespace llmq::obs
