#pragma once
// Structured event tracing for the serving stack.
//
// Every lifecycle transition the engine, cache, scheduler, and fleet make
// — enqueue, admit, defer, prefill chunk, first token, decode step,
// preempt, resume, finish, cache lookup/admit/release/evict, route
// decision, window plan — can be emitted as a fixed-size TraceEvent
// stamped with the component's virtual clock. A trace is the causally
// ordered record behind the end-of-run aggregates: it answers "why was
// this tail request slow" (replay its span) and serves as the oracle a
// future threaded runtime is diffed against trace-for-trace (ROADMAP
// item 1).
//
// Sink contract (near-zero cost when disabled): instrumented components
// hold a raw `TraceSink*` that is nullptr by default. Every emission
// site is guarded by one pointer test — no virtual call, no allocation,
// no formatting happens on the disabled path — and emission itself never
// mutates component state, so a traced run is bit-identical to an
// untraced one (tests/obs pins this). TraceLog, the standard sink, is a
// flat vector append.
//
// Determinism: the serving stack is a pure function of (seed, config),
// and events carry only virtual-clock times and integer payloads, so the
// serialized trace (export.hpp) is bit-identical across reruns — the
// property that makes a trace usable as a golden oracle.

#include <cstdint>
#include <vector>

namespace llmq::obs {

class TimeSeries;  // timeseries.hpp

/// Typed lifecycle events. Integer payload fields a/b/c are
/// per-kind (documented inline); `id` is the request id for request
/// events, the window ordinal for WindowPlan, 0 otherwise.
enum class EventKind : std::uint8_t {
  Enqueue,       // submitted to a session   a=prompt_tokens b=output_tokens
  Admit,         // admitted                 a=cached_tokens(this admission)
                 //                          b=first-pass line before admission
                 //                          c=bit0 resumed, bit1 chunked
  Defer,         // blocked on KV memory     a=blocks_needed b=blocks_used
                 //                          c=pool_blocks
  PrefillChunk,  // one chunk ran            a=tokens b=first-pass c=replay
  FirstToken,    // first output token       a=generated-so-far(=1)
  DecodeStep,    // one decode step          a=decode_batch b=retired
  Preempt,       // victim released its KV   a=generated c=1 if auto(engine)
  Resume,        // parked -> pending again  (explicit resume() only)
  Finish,        // retired                  a=output_tokens b=prompt_tokens
                 //                          c=cached(first admission)
  CacheLookup,   // pinned prefix probe      a=prompt_tokens b=hit_tokens
                 //                          c=pinned path blocks; cls=1 when
                 //                          a resume probe (no stats counted)
  CacheAdmit,    // blocks inserted          a=new_blocks b=path_after
                 //                          c=path_before (pin delta = b-c)
  CacheRelease,  // lease unpinned           a=path blocks unpinned
  CacheCancelLookup,  // deferred request undid its lookup stats
                      // a=prompt_tokens b=hit_tokens (the internal release
                      // emits its own CacheRelease for the pins)
  CacheEvict,    // LRU eviction             a=blocks evicted b=tier they
                 //                          died at (0=GPU, bottom-tier
                 //                          overflow on a tiered cache)
  RouteDecision, // fleet routed a request   a=chosen replica b=peek tokens
                 //                          c=outstanding prompt tokens at
                 //                          the chosen replica (global track)
  WindowPlan,    // scheduler emitted window id=ordinal a=window size
                 //                          b=policy c=still buffered
  TurnSpawn,     // session follow-up fed    id=child request id a=session
                 //                          b=turn c=parent request id
                 //                          (global track, time = child's
                 //                          arrival time)
  TierDemote,    // cold blocks pushed down  a=blocks b=destination tier
                 //                          (1=host 2=disk) c=source tier
  TierPromote,   // blocks pulled up to GPU  a=from host b=from disk
                 //                          c=path blocks after; cls=1 when
                 //                          a recompute refresh (unpriced)
  ReplicaSpawn,  // replica activated        a=active replicas after
                 //                          b=1 if warmed by migration
                 //                          (global track)
  ReplicaDrain,  // replica stopped routing  a=active replicas after
                 //                          (global track)
  PrefixMigrate, // hot prefixes landed      a=blocks transferred b=donor
                 //                          c=recipient (global track,
                 //                          time = dispatch observing
                 //                          the landing)
};

const char* to_string(EventKind k);

/// Track id for driver-level events (RouteDecision, WindowPlan) that run
/// on the merged clock rather than any one replica's session clock. The
/// merged clock can be ahead of a busy replica's clock, so these events
/// must not be interleaved into a replica track's monotone order.
inline constexpr std::uint32_t kGlobalTrack = 0xFFFFFFFFu;

/// Fixed-layout event record: a kind, the priority class where one
/// applies, the emitting track (replica index or kGlobalTrack), the
/// emitter's virtual-clock time, and three per-kind integer payloads.
struct TraceEvent {
  EventKind kind = EventKind::Enqueue;
  std::uint8_t cls = 0;       // PriorityClass ordinal where applicable
  std::uint32_t replica = 0;  // track: replica index or kGlobalTrack
  double time = 0.0;          // virtual seconds on the emitter's clock
  std::uint64_t id = 0;       // request id / window ordinal / 0
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// Abstract sink. Implementations must not mutate traced components (the
/// purity tests compare traced vs untraced run results bit-for-bit).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& e) = 0;
};

/// The standard sink: an in-memory, append-only event log.
class TraceLog final : public TraceSink {
 public:
  void emit(const TraceEvent& e) override { events_.push_back(e); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent>& mutable_events() { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Observability wiring a driver (run_online / run_queries_served)
/// threads into the components it constructs. Both pointers nullable and
/// caller-owned; null sink + null timeseries is the default (and free).
struct TraceConfig {
  TraceSink* sink = nullptr;
  TimeSeries* timeseries = nullptr;
  /// Virtual-time gauge sampling interval; <= 0 disables sampling even
  /// when `timeseries` is set.
  double sample_interval_seconds = 0.25;

  bool enabled() const { return sink != nullptr; }
  bool sampling() const {
    return timeseries != nullptr && sample_interval_seconds > 0.0;
  }
};

}  // namespace llmq::obs
