#pragma once
// Windowed (streaming) request reordering — an extension beyond the paper.
//
// The paper assumes the whole table is available up front ("oracular
// knowledge of all requests"). Analytics engines often stream: only a
// bounded buffer of rows can be held and reordered before requests must
// be issued. Windowed GGR partitions the incoming row order into
// consecutive windows of `window_rows`, runs GGR independently inside
// each window (full per-row field reordering), and concatenates the
// per-window schedules. window_rows = n recovers plain GGR;
// window_rows = 1 degenerates to the original ordering with stats-ranked
// fields. The ablation bench sweeps the window size to show how much
// buffering the paper's gains actually require.

#include "core/ggr.hpp"

namespace llmq::core {

struct WindowedOptions {
  std::size_t window_rows = 1024;  // buffer size; 0 = whole table
  GgrOptions ggr;
};

struct WindowedResult {
  double phc = 0.0;       // exact PHC of the emitted full ordering
  Ordering ordering;
  std::size_t windows = 0;
  double solve_seconds = 0.0;
  GgrCounters counters;   // aggregated over windows
};

WindowedResult windowed_ggr(const table::Table& t, const table::FdSet& fds,
                            const WindowedOptions& options = {});

}  // namespace llmq::core
