#pragma once
// Local-search refinement of a request ordering — an extension beyond the
// paper. Given any schedule (original, stats-fixed, GGR), hill-climb with
// two move types until a fixed point or a pass budget:
//
//   * adjacent row swaps that increase PHC (delta evaluated locally —
//     only the three affected adjacency hits change);
//   * pair field realignment: front the set of fields on which two
//     adjacent rows agree in both rows' orders, turning the whole
//     agreement set into a shared positional prefix; kept only if the
//     three affected adjacency hits improve in total.
//
// This quantifies how much of the GGR→OPHR gap cheap local search can
// close (bench_ablation_ggr reports GGR vs GGR+refine).

#include "core/ordering.hpp"
#include "core/phc.hpp"

namespace llmq::core {

struct RefineOptions {
  LengthMeasure measure = LengthMeasure::Tokens;
  std::size_t max_passes = 4;   // full sweeps over the schedule
  bool row_swaps = true;
  bool field_moves = true;
};

struct RefineResult {
  double phc_before = 0.0;
  double phc_after = 0.0;
  Ordering ordering;
  std::size_t moves_applied = 0;
  std::size_t passes = 0;
  double seconds = 0.0;
};

/// Refine `start` for `t`. The result's PHC is never below the input's.
RefineResult refine_ordering(const table::Table& t, Ordering start,
                             const RefineOptions& options = {});

}  // namespace llmq::core
