#include "core/refine.hpp"

#include <algorithm>
#include <chrono>

namespace llmq::core {

namespace {

/// Positional hit between the scheduled rows at output positions pos-1 and
/// pos (FieldAndValue semantics, matching the default PHC metric).
double adjacency_hit(const table::Table& t, const CellLengths& lengths,
                     const std::vector<std::size_t>& rows,
                     const std::vector<std::vector<std::size_t>>& fields,
                     std::size_t pos) {
  if (pos == 0 || pos >= rows.size()) return 0.0;
  const auto& prev_f = fields[pos - 1];
  const auto& cur_f = fields[pos];
  double hit = 0.0;
  for (std::size_t f = 0; f < cur_f.size(); ++f) {
    if (prev_f[f] != cur_f[f]) break;
    if (t.cell(rows[pos], cur_f[f]) != t.cell(rows[pos - 1], prev_f[f])) break;
    hit += lengths.sq_len(rows[pos], cur_f[f]);
  }
  return hit;
}

/// Pair alignment: the columns on which two rows agree, fronted in both
/// rows' field orders (in the first row's current relative order), so the
/// whole agreement set becomes a shared positional prefix.
struct PairAlignment {
  std::vector<std::size_t> prev_fields;
  std::vector<std::size_t> cur_fields;
  bool any_common = false;
};

PairAlignment align_pair(const table::Table& t, std::size_t prev_row,
                         const std::vector<std::size_t>& prev_fields,
                         std::size_t cur_row,
                         const std::vector<std::size_t>& cur_fields) {
  PairAlignment out;
  std::vector<bool> common(t.num_cols(), false);
  std::vector<std::size_t> shared;
  for (std::size_t col : prev_fields) {
    if (t.cell(prev_row, col) == t.cell(cur_row, col)) {
      common[col] = true;
      shared.push_back(col);
      out.any_common = true;
    }
  }
  auto rebuild = [&](const std::vector<std::size_t>& order) {
    std::vector<std::size_t> o = shared;
    for (std::size_t col : order)
      if (!common[col]) o.push_back(col);
    return o;
  };
  out.prev_fields = rebuild(prev_fields);
  out.cur_fields = rebuild(cur_fields);
  return out;
}

}  // namespace

RefineResult refine_ordering(const table::Table& t, Ordering start,
                             const RefineOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const CellLengths lengths(t, options.measure);

  RefineResult out;
  out.phc_before = phc_with_lengths(t, lengths, start);

  std::vector<std::size_t> rows = start.row_order();
  std::vector<std::vector<std::size_t>> fields = start.field_orders();
  const std::size_t n = rows.size();

  auto hit = [&](std::size_t pos) {
    return adjacency_hit(t, lengths, rows, fields, pos);
  };

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    std::size_t moves_this_pass = 0;

    if (options.field_moves) {
      for (std::size_t pos = 1; pos < n; ++pos) {
        // Realign the (pos-1, pos) pair: fronting their agreement set
        // changes hits at pos-1, pos, and pos+1.
        PairAlignment aligned = align_pair(t, rows[pos - 1], fields[pos - 1],
                                           rows[pos], fields[pos]);
        if (!aligned.any_common) continue;
        const double before =
            hit(pos - 1) + hit(pos) + (pos + 1 < n ? hit(pos + 1) : 0.0);
        auto saved_prev = fields[pos - 1];
        auto saved_cur = fields[pos];
        fields[pos - 1] = std::move(aligned.prev_fields);
        fields[pos] = std::move(aligned.cur_fields);
        const double after =
            hit(pos - 1) + hit(pos) + (pos + 1 < n ? hit(pos + 1) : 0.0);
        if (after > before + 1e-12) {
          ++moves_this_pass;
        } else {
          fields[pos - 1] = std::move(saved_prev);
          fields[pos] = std::move(saved_cur);
        }
      }
    }

    if (options.row_swaps) {
      for (std::size_t pos = 0; pos + 1 < n; ++pos) {
        // Swapping positions pos/pos+1 affects hits at pos, pos+1, pos+2.
        const double before =
            hit(pos) + hit(pos + 1) + (pos + 2 < n ? hit(pos + 2) : 0.0);
        std::swap(rows[pos], rows[pos + 1]);
        std::swap(fields[pos], fields[pos + 1]);
        const double after =
            hit(pos) + hit(pos + 1) + (pos + 2 < n ? hit(pos + 2) : 0.0);
        if (after > before + 1e-12) {
          ++moves_this_pass;
        } else {
          std::swap(rows[pos], rows[pos + 1]);
          std::swap(fields[pos], fields[pos + 1]);
        }
      }
    }

    out.moves_applied += moves_this_pass;
    ++out.passes;
    if (moves_this_pass == 0) break;
  }

  out.ordering = Ordering(std::move(rows), std::move(fields));
  out.phc_after = phc_with_lengths(t, lengths, out.ordering);
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

}  // namespace llmq::core
