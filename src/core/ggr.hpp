#pragma once
// Greedy Group Recursion (paper §4.2, Algorithm 1).
//
// GGR approximates OPHR: at each step it scans every (field, distinct
// value) group, scores each with HITCOUNT — the group's expected PHC
// contribution including fields functionally tied to the group's field —
// and greedily commits to the best group. It recurses row-wise on the rows
// outside the group and column-wise on the group's rows minus the chosen
// field(s). Early stopping by recursion depth or HITCOUNT threshold
// (§4.2.2) bounds the work; stopped sub-tables fall back to a fixed field
// ordering ranked by table statistics with a lexicographic row sort.
//
// Functional dependencies (§4.2.1) serve two purposes: the chosen field's
// FD closure is placed directly after it in the per-row field order (those
// values repeat whenever the chosen value repeats, if the FD holds), and
// the closure is excluded from deeper recursion, shrinking the search.
//
// Algorithm 1 fidelity notes (see DESIGN.md §7): line 29's emitted list is
// implemented as [group rows (value + FD fields first)] ++ [other rows];
// HITCOUNT squares inferred-column lengths by default so the score is in
// PHC units (set `square_inferred_lengths=false` for the literal line 6).

#include <cstdint>
#include <vector>

#include "core/ordering.hpp"
#include "core/phc.hpp"
#include "table/fd.hpp"
#include "table/table.hpp"

namespace llmq::core {

struct GgrOptions {
  LengthMeasure measure = LengthMeasure::Tokens;

  /// Max row-wise recursion depth (sub-table of rows *outside* the chosen
  /// group); <0 disables the limit. Paper §6.5 uses 4.
  int max_row_depth = 4;

  /// Max column-wise recursion depth (group rows minus chosen fields);
  /// <0 disables the limit. Paper §6.5 uses 2.
  int max_col_depth = 2;

  /// Stop recursing when the best group's HITCOUNT falls below this
  /// (paper's alternative config uses 1e5). 0 disables.
  double hitcount_threshold = 0.0;

  /// Honor functional dependencies (disable for ablation).
  bool use_fds = true;

  /// Square FD-inferred column lengths inside HITCOUNT (PHC units) rather
  /// than the literal unsquared average of Algorithm 1 line 6.
  bool square_inferred_lengths = true;

  /// On early stop, order the remaining sub-table by the stats-ranked
  /// fixed field ordering + lexicographic row sort (paper §4.2.2). When
  /// false, the sub-table is emitted in its incoming order (ablation).
  bool stats_fallback = true;
};

struct GgrCounters {
  std::size_t recursion_nodes = 0;
  std::size_t groups_scored = 0;
  std::size_t fallbacks = 0;        // early-stop fallback invocations
  std::size_t fd_fields_skipped = 0;  // columns pruned via FD closure
};

struct GgrResult {
  /// Exact PHC of `ordering` (re-measured with the independent metric, not
  /// the greedy's internal estimate — honest under approximate FDs).
  double phc = 0.0;
  /// The greedy objective value S from Algorithm 1 (estimate).
  double estimated_phc = 0.0;
  Ordering ordering;
  GgrCounters counters;
  double solve_seconds = 0.0;
};

GgrResult ggr(const table::Table& t, const table::FdSet& fds,
              const GgrOptions& options = {});

/// Convenience: no FDs.
GgrResult ggr(const table::Table& t, const GgrOptions& options = {});

}  // namespace llmq::core
