#include "core/ophr.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "util/rng.hpp"

namespace llmq::core {

namespace {

using Clock = std::chrono::steady_clock;

struct Deadline {
  Clock::time_point end;
  bool enabled = false;
  bool expired() const { return enabled && Clock::now() > end; }
};

struct TimeoutSignal {};

/// One emitted row: original row index + field order (original col ids).
struct RowPlan {
  std::size_t row;
  std::vector<std::size_t> fields;
};

struct NodeResult {
  double phc = 0.0;
  std::vector<RowPlan> plans;
};

struct ViewKey {
  std::vector<std::uint32_t> rows;
  std::vector<std::uint32_t> cols;
  bool operator==(const ViewKey& o) const {
    return rows == o.rows && cols == o.cols;
  }
};

struct ViewKeyHash {
  std::size_t operator()(const ViewKey& k) const {
    std::uint64_t h = util::hash64(k.rows.size() * 1315423911ULL);
    for (auto r : k.rows) h = util::hash_combine(h, r);
    h = util::hash_combine(h, 0xC01dC0FFEEULL);
    for (auto c : k.cols) h = util::hash_combine(h, c);
    return static_cast<std::size_t>(h);
  }
};

class Solver {
 public:
  Solver(const table::Table& t, const CellLengths& lengths, Deadline deadline)
      : t_(t), lengths_(lengths), deadline_(deadline) {}

  NodeResult solve(const ViewKey& key) {
    if (deadline_.expired()) throw TimeoutSignal{};
    ++nodes_;
    if (auto it = memo_.find(key); it != memo_.end()) {
      ++memo_hits_;
      return it->second;
    }
    NodeResult result = solve_uncached(key);
    memo_.emplace(key, result);
    return result;
  }

  std::size_t nodes() const { return nodes_; }
  std::size_t memo_hits() const { return memo_hits_; }

 private:
  NodeResult solve_uncached(const ViewKey& key) {
    if (key.rows.size() == 1) return single_row(key);
    if (key.cols.size() == 1) return single_col(key);

    // Pruning: if every value in every remaining field is distinct within
    // this view, no ordering can score — emit rows as-is.
    if (all_distinct(key)) {
      NodeResult res;
      res.plans.reserve(key.rows.size());
      for (auto r : key.rows) res.plans.push_back(make_plan(r, key.cols));
      return res;
    }

    NodeResult best;
    bool have_best = false;
    for (std::size_t ci = 0; ci < key.cols.size(); ++ci) {
      const std::uint32_t col = key.cols[ci];
      // Distinct values of `col` within the view, grouped. std::map gives
      // deterministic candidate order.
      std::map<std::string_view, std::vector<std::uint32_t>> groups;
      for (auto r : key.rows) groups[t_.cell(r, col)].push_back(r);
      for (const auto& [value, rv] : groups) {
        const double contribution =
            lengths_.sq_len(rv.front(), col) *
            static_cast<double>(rv.size() - 1);

        // Sub-table A: rows without this value, all fields.
        ViewKey a_key;
        a_key.cols = key.cols;
        for (auto r : key.rows)
          if (t_.cell(r, col) != value) a_key.rows.push_back(r);

        // Sub-table B: rows with this value, without this field.
        ViewKey b_key;
        b_key.rows = rv;
        for (auto c : key.cols)
          if (c != col) b_key.cols.push_back(c);

        NodeResult b = solve(b_key);
        NodeResult a;
        if (!a_key.rows.empty()) a = solve(a_key);

        const double total = a.phc + b.phc + contribution;
        if (!have_best || total > best.phc) {
          have_best = true;
          best.phc = total;
          best.plans.clear();
          best.plans.reserve(key.rows.size());
          for (auto& plan : b.plans) {
            RowPlan p;
            p.row = plan.row;
            p.fields.reserve(key.cols.size());
            p.fields.push_back(col);
            p.fields.insert(p.fields.end(), plan.fields.begin(),
                            plan.fields.end());
            best.plans.push_back(std::move(p));
          }
          for (auto& plan : a.plans) best.plans.push_back(std::move(plan));
        }
      }
    }
    return best;
  }

  NodeResult single_row(const ViewKey& key) {
    NodeResult res;
    res.plans.push_back(make_plan(key.rows[0], key.cols));
    return res;
  }

  NodeResult single_col(const ViewKey& key) {
    // Group identical values; each value scores len^2 * (count - 1).
    std::map<std::string_view, std::vector<std::uint32_t>> groups;
    const std::uint32_t col = key.cols[0];
    for (auto r : key.rows) groups[t_.cell(r, col)].push_back(r);
    NodeResult res;
    for (const auto& [value, rows] : groups) {
      res.phc += lengths_.sq_len(rows.front(), col) *
                 static_cast<double>(rows.size() - 1);
      for (auto r : rows) res.plans.push_back(make_plan(r, key.cols));
    }
    return res;
  }

  bool all_distinct(const ViewKey& key) const {
    for (auto c : key.cols) {
      std::unordered_map<std::string_view, int> seen;
      for (auto r : key.rows)
        if (++seen[t_.cell(r, c)] > 1) return false;
    }
    return true;
  }

  static RowPlan make_plan(std::uint32_t row,
                           const std::vector<std::uint32_t>& cols) {
    RowPlan p;
    p.row = row;
    p.fields.assign(cols.begin(), cols.end());
    return p;
  }

  const table::Table& t_;
  const CellLengths& lengths_;
  Deadline deadline_;
  std::unordered_map<ViewKey, NodeResult, ViewKeyHash> memo_;
  std::size_t nodes_ = 0;
  std::size_t memo_hits_ = 0;
};

Ordering plans_to_ordering(std::vector<RowPlan> plans) {
  std::vector<std::size_t> rows;
  std::vector<std::vector<std::size_t>> fields;
  rows.reserve(plans.size());
  fields.reserve(plans.size());
  for (auto& p : plans) {
    rows.push_back(p.row);
    fields.push_back(std::move(p.fields));
  }
  return Ordering(std::move(rows), std::move(fields));
}

}  // namespace

std::optional<OphrResult> ophr(const table::Table& t,
                               const OphrOptions& options) {
  if (t.num_rows() == 0)
    throw std::invalid_argument("ophr: empty table");
  const auto start = Clock::now();
  Deadline deadline;
  if (options.time_budget_seconds > 0.0) {
    deadline.enabled = true;
    deadline.end = start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options.time_budget_seconds));
  }
  const CellLengths lengths(t, options.measure);
  Solver solver(t, lengths, deadline);

  ViewKey root;
  root.rows.resize(t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r)
    root.rows[r] = static_cast<std::uint32_t>(r);
  root.cols.resize(t.num_cols());
  for (std::size_t c = 0; c < t.num_cols(); ++c)
    root.cols[c] = static_cast<std::uint32_t>(c);

  try {
    NodeResult res = solver.solve(root);
    OphrResult out;
    out.phc = res.phc;
    out.ordering = plans_to_ordering(std::move(res.plans));
    out.nodes_explored = solver.nodes();
    out.memo_hits = solver.memo_hits();
    out.solve_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return out;
  } catch (const TimeoutSignal&) {
    return std::nullopt;
  }
}

}  // namespace llmq::core
