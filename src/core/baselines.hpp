#pragma once
// Baseline orderings (paper §6.1.3) and the stats-ranked fixed ordering
// that GGR falls back to on early stopping (§4.2.2).

#include "core/ordering.hpp"
#include "table/stats.hpp"
#include "table/table.hpp"
#include "util/rng.hpp"

namespace llmq::core {

/// "Cache (Original)" / "No Cache": data exactly as stored — original row
/// order, schema field order.
Ordering original_ordering(const table::Table& t);

/// Fixed field ordering ranked by expected PHC contribution
/// (E[len_tokens]^2 * (n/cardinality - 1), table/stats.hpp), with rows
/// sorted lexicographically under that field priority. This is both a
/// strong fixed-order baseline and the GGR early-stop fallback.
Ordering stats_fixed_ordering(const table::Table& t);

/// Same, restricted to a sub-view (rows/cols as original indices). The
/// returned Ordering is expressed in original indices and covers exactly
/// `rows`; `cols` lists the fields to order (callers append the rest).
/// Exposed for GGR's internal fallback.
struct SubOrdering {
  std::vector<std::size_t> row_order;               // original row ids
  std::vector<std::size_t> field_order;             // original col ids
};
/// `closures` (optional, indexed by original column id) applies §4.2.1 to
/// the fallback too: fields functionally tied to a ranked field are placed
/// directly after it, so values that repeat *together* stay contiguous in
/// the fixed order.
SubOrdering stats_fixed_subordering(
    const table::Table& t, const std::vector<std::uint32_t>& rows,
    const std::vector<std::uint32_t>& cols,
    const std::vector<std::vector<std::size_t>>* closures = nullptr);

/// Rows sorted lexicographically with the *original* field order (ablation:
/// isolates "sorting helps" from "field choice helps").
Ordering sorted_original_fields(const table::Table& t);

/// Uniformly random row order and per-row field orders (tests, worst case).
Ordering random_ordering(const table::Table& t, util::Rng& rng);

}  // namespace llmq::core
