#include "core/ggr.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "core/baselines.hpp"

namespace llmq::core {

namespace {

using Clock = std::chrono::steady_clock;

struct RowPlan {
  std::size_t row;
  std::vector<std::size_t> fields;
};

struct NodeResult {
  double s = 0.0;  // greedy objective estimate (Algorithm 1's S)
  std::vector<RowPlan> plans;
};

/// A candidate group: rows of the view sharing `value` in column `col`.
struct Candidate {
  std::uint32_t col = 0;          // original column index
  std::size_t col_view_pos = 0;   // position of col within the view
  std::string_view value;
  std::vector<std::uint32_t> rows;
  double hitcount = 0.0;
};

class GgrSolver {
 public:
  GgrSolver(const table::Table& t, const table::FdSet& fds,
            const CellLengths& lengths, const GgrOptions& opts,
            GgrCounters& counters)
      : t_(t), fds_(fds), lengths_(lengths), opts_(opts), counters_(counters) {
    in_group_.assign(t.num_rows(), 0);
    // Precompute FD closures per column (against the full schema).
    closures_.resize(t.num_cols());
    if (opts_.use_fds) {
      for (std::size_t c = 0; c < t.num_cols(); ++c)
        closures_[c] = fds_.inferred_columns(t.schema(), c);
    }
  }

  NodeResult solve(const std::vector<std::uint32_t>& rows,
                   const std::vector<std::uint32_t>& cols, int row_depth,
                   int col_depth) {
    ++counters_.recursion_nodes;
    if (rows.size() == 1) {
      NodeResult res;
      res.plans.push_back(RowPlan{rows[0], {cols.begin(), cols.end()}});
      return res;
    }
    if (cols.empty()) {
      NodeResult res;
      for (auto r : rows) res.plans.push_back(RowPlan{r, {}});
      return res;
    }
    if (cols.size() == 1) return single_col(rows, cols);

    const bool depth_exceeded =
        (opts_.max_row_depth >= 0 && row_depth >= opts_.max_row_depth) ||
        (opts_.max_col_depth >= 0 && col_depth >= opts_.max_col_depth);
    if (depth_exceeded) return fallback(rows, cols);

    Candidate best = best_group(rows, cols);
    if (best.rows.empty() || best.hitcount <= 0.0) {
      // No value repeats anywhere in this view; ordering cannot score on
      // the leading field. Hand off to the fallback (which may still order
      // sensibly for downstream fields).
      return fallback(rows, cols);
    }
    if (opts_.hitcount_threshold > 0.0 &&
        best.hitcount < opts_.hitcount_threshold)
      return fallback(rows, cols);

    // Fields committed for the group rows: chosen column + FD closure
    // (restricted to columns still in this view).
    std::vector<std::size_t> committed{best.col};
    for (std::size_t c : closures_[best.col]) {
      if (c == best.col) continue;
      if (std::find(cols.begin(), cols.end(), static_cast<std::uint32_t>(c)) !=
          cols.end()) {
        committed.push_back(c);
        ++counters_.fd_fields_skipped;
      }
    }

    // Sub-table B: group rows, minus committed fields (column recursion).
    std::vector<std::uint32_t> b_cols;
    b_cols.reserve(cols.size());
    for (auto c : cols)
      if (std::find(committed.begin(), committed.end(), c) == committed.end())
        b_cols.push_back(c);

    // Sub-table A: remaining rows, all fields (row recursion). The
    // membership scratch is a member reused across every recursion node —
    // a fresh O(num_rows) vector here is O(N^2) allocation over the whole
    // recursion. Marks are cleared before recursing, so reuse is safe.
    std::vector<std::uint32_t> a_rows;
    a_rows.reserve(rows.size() - best.rows.size());
    for (auto r : best.rows) in_group_[r] = 1;
    for (auto r : rows)
      if (!in_group_[r]) a_rows.push_back(r);
    for (auto r : best.rows) in_group_[r] = 0;

    NodeResult b = solve(best.rows, b_cols, row_depth, col_depth + 1);
    NodeResult a;
    if (!a_rows.empty()) a = solve(a_rows, cols, row_depth + 1, col_depth);

    NodeResult res;
    res.s = a.s + b.s + best.hitcount;
    res.plans.reserve(rows.size());
    for (auto& plan : b.plans) {
      RowPlan p;
      p.row = plan.row;
      p.fields.reserve(cols.size());
      p.fields.insert(p.fields.end(), committed.begin(), committed.end());
      p.fields.insert(p.fields.end(), plan.fields.begin(), plan.fields.end());
      res.plans.push_back(std::move(p));
    }
    for (auto& plan : a.plans) res.plans.push_back(std::move(plan));
    return res;
  }

 private:
  NodeResult single_col(const std::vector<std::uint32_t>& rows,
                        const std::vector<std::uint32_t>& cols) {
    const std::uint32_t col = cols[0];
    // Group identical values, first-seen order; sort groups by value for a
    // deterministic, grouped emission (Algorithm 1 line 15's sort).
    std::vector<Candidate> groups = collect_groups(rows, {col});
    std::sort(groups.begin(), groups.end(),
              [](const Candidate& x, const Candidate& y) {
                return x.value < y.value;
              });
    NodeResult res;
    for (const auto& g : groups) {
      res.s += lengths_.sq_len(g.rows.front(), col) *
               static_cast<double>(g.rows.size() - 1);
      for (auto r : g.rows) res.plans.push_back(RowPlan{r, {col}});
    }
    return res;
  }

  /// All (col, value) groups for the listed columns, first-seen order,
  /// without HITCOUNT scores.
  std::vector<Candidate> collect_groups(
      const std::vector<std::uint32_t>& rows,
      const std::vector<std::uint32_t>& cols) const {
    std::vector<Candidate> out;
    for (std::size_t ci = 0; ci < cols.size(); ++ci) {
      const std::uint32_t col = cols[ci];
      std::unordered_map<std::string_view, std::size_t> idx;
      idx.reserve(rows.size() * 2);
      for (auto r : rows) {
        const std::string& v = t_.cell(r, col);
        auto [it, inserted] = idx.try_emplace(v, out.size());
        if (inserted) {
          Candidate c;
          c.col = col;
          c.col_view_pos = ci;
          c.value = v;
          out.push_back(std::move(c));
        }
        out[it->second].rows.push_back(r);
      }
    }
    return out;
  }

  /// HITCOUNT (Algorithm 1 lines 3-8) for every group; returns the best.
  Candidate best_group(const std::vector<std::uint32_t>& rows,
                       const std::vector<std::uint32_t>& cols) {
    std::vector<Candidate> groups = collect_groups(rows, cols);
    counters_.groups_scored += groups.size();

    Candidate best;
    bool have = false;
    for (auto& g : groups) {
      if (g.rows.size() < 2) continue;  // contributes (|Rv|-1)=0
      double tot = lengths_.sq_len(g.rows.front(), g.col);
      for (std::size_t c2 : closures_[g.col]) {
        if (c2 == g.col) continue;
        if (std::find(cols.begin(), cols.end(),
                      static_cast<std::uint32_t>(c2)) == cols.end())
          continue;
        double acc = 0.0;
        for (auto r : g.rows)
          acc += opts_.square_inferred_lengths ? lengths_.sq_len(r, c2)
                                               : lengths_.len(r, c2);
        tot += acc / static_cast<double>(g.rows.size());
      }
      g.hitcount = tot * static_cast<double>(g.rows.size() - 1);
      if (!have || g.hitcount > best.hitcount ||
          (g.hitcount == best.hitcount &&
           (g.rows.size() > best.rows.size() ||
            (g.rows.size() == best.rows.size() &&
             (g.col_view_pos < best.col_view_pos ||
              (g.col_view_pos == best.col_view_pos && g.value < best.value)))))) {
        best = std::move(g);
        have = true;
      }
    }
    return best;
  }

  /// Early-stop fallback (§4.2.2): fixed stats-ranked field order +
  /// lexicographic row sort; or passthrough when stats_fallback is off.
  NodeResult fallback(const std::vector<std::uint32_t>& rows,
                      const std::vector<std::uint32_t>& cols) {
    ++counters_.fallbacks;
    NodeResult res;
    std::vector<std::size_t> row_order;
    std::vector<std::size_t> field_order;
    if (opts_.stats_fallback) {
      SubOrdering sub = stats_fixed_subordering(
          t_, rows, cols, opts_.use_fds ? &closures_ : nullptr);
      row_order = std::move(sub.row_order);
      field_order = std::move(sub.field_order);
    } else {
      row_order.assign(rows.begin(), rows.end());
      field_order.assign(cols.begin(), cols.end());
    }
    // Exact positional PHC of this fixed sub-ordering (cheap single pass).
    for (std::size_t i = 1; i < row_order.size(); ++i) {
      for (std::size_t f : field_order) {
        if (t_.cell(row_order[i], f) != t_.cell(row_order[i - 1], f)) break;
        res.s += lengths_.sq_len(row_order[i], f);
      }
    }
    res.plans.reserve(row_order.size());
    for (std::size_t r : row_order) res.plans.push_back(RowPlan{r, field_order});
    return res;
  }

  const table::Table& t_;
  const table::FdSet& fds_;
  const CellLengths& lengths_;
  const GgrOptions& opts_;
  GgrCounters& counters_;
  std::vector<std::vector<std::size_t>> closures_;
  std::vector<char> in_group_;  // per-row membership scratch for solve()
};

}  // namespace

GgrResult ggr(const table::Table& t, const table::FdSet& fds,
              const GgrOptions& options) {
  if (t.num_rows() == 0) throw std::invalid_argument("ggr: empty table");
  const auto start = Clock::now();

  const CellLengths lengths(t, options.measure);
  GgrResult out;
  GgrSolver solver(t, fds, lengths, options, out.counters);

  std::vector<std::uint32_t> rows(t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r)
    rows[r] = static_cast<std::uint32_t>(r);
  std::vector<std::uint32_t> cols(t.num_cols());
  for (std::size_t c = 0; c < t.num_cols(); ++c)
    cols[c] = static_cast<std::uint32_t>(c);

  NodeResult res = solver.solve(rows, cols, 0, 0);

  std::vector<std::size_t> row_order;
  std::vector<std::vector<std::size_t>> field_orders;
  row_order.reserve(res.plans.size());
  field_orders.reserve(res.plans.size());
  for (auto& p : res.plans) {
    row_order.push_back(p.row);
    field_orders.push_back(std::move(p.fields));
  }
  out.ordering = Ordering(std::move(row_order), std::move(field_orders));
  out.estimated_phc = res.s;
  out.phc = phc_with_lengths(t, lengths, out.ordering);
  out.solve_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

GgrResult ggr(const table::Table& t, const GgrOptions& options) {
  return ggr(t, table::FdSet{}, options);
}

}  // namespace llmq::core
