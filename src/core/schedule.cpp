#include "core/schedule.hpp"

#include <chrono>

#include "core/baselines.hpp"

namespace llmq::core {

std::string to_string(Policy p) {
  switch (p) {
    case Policy::Original: return "original";
    case Policy::SortedFixed: return "sorted-fixed";
    case Policy::StatsFixed: return "stats-fixed";
    case Policy::Ggr: return "ggr";
    case Policy::Ophr: return "ophr";
  }
  return "?";
}

std::optional<Policy> policy_from_string(const std::string& name) {
  if (name == "original") return Policy::Original;
  if (name == "sorted-fixed") return Policy::SortedFixed;
  if (name == "stats-fixed") return Policy::StatsFixed;
  if (name == "ggr") return Policy::Ggr;
  if (name == "ophr") return Policy::Ophr;
  return std::nullopt;
}

Plan plan_ordering(const table::Table& t, const table::FdSet& fds,
                   const PlanRequest& req) {
  using Clock = std::chrono::steady_clock;
  Plan out;
  const auto start = Clock::now();
  switch (req.policy) {
    case Policy::Original:
      out.ordering = original_ordering(t);
      break;
    case Policy::SortedFixed:
      out.ordering = sorted_original_fields(t);
      break;
    case Policy::StatsFixed:
      out.ordering = stats_fixed_ordering(t);
      break;
    case Policy::Ggr: {
      GgrResult r = ggr(t, fds, req.ggr);
      out.ordering = std::move(r.ordering);
      out.planner_phc = r.phc;
      out.solver_seconds = r.solve_seconds;
      return out;
    }
    case Policy::Ophr: {
      if (auto r = ophr(t, req.ophr)) {
        out.ordering = std::move(r->ordering);
        out.planner_phc = r->phc;
        out.solver_seconds = r->solve_seconds;
      } else {
        out.ordering = original_ordering(t);
        out.timed_out = true;
      }
      return out;
    }
  }
  out.solver_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

}  // namespace llmq::core
