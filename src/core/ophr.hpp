#pragma once
// Optimal Prefix Hit Recursion (paper §4.1).
//
// Exact solver: considers, at every step, every (field, distinct value)
// group; splits the table into (rows without the value, all fields) and
// (rows with the value, remaining fields); and takes the best total. The
// complexity is exponential in table size — the paper notes a 10-row table
// can take minutes — so the solver carries a wall-clock budget and reports
// failure instead of running unbounded (mirroring the paper's 2-hour cap
// in Appendix D.1). Sub-problems are memoized on (row set, field set),
// which makes the small instances used for validation tractable.

#include <optional>

#include "core/ordering.hpp"
#include "core/phc.hpp"
#include "table/table.hpp"

namespace llmq::core {

struct OphrOptions {
  LengthMeasure measure = LengthMeasure::Tokens;
  /// Give up after this much wall-clock time (seconds); <=0 means no limit.
  double time_budget_seconds = 0.0;
};

struct OphrResult {
  double phc = 0.0;    // the solver's computed optimum S
  Ordering ordering;   // a schedule achieving at least S
  std::size_t nodes_explored = 0;
  std::size_t memo_hits = 0;
  double solve_seconds = 0.0;
};

/// Returns nullopt iff the time budget expired.
std::optional<OphrResult> ophr(const table::Table& t,
                               const OphrOptions& options = {});

}  // namespace llmq::core
