#pragma once
// Planner facade.
//
// Benchmarks, examples, and the query executor select a reordering policy
// by name; this facade dispatches to the concrete planner and returns the
// ordering together with solver metadata. It is the single switch point
// for the paper's method axis {No Cache, Cache (Original), Cache (GGR)}
// plus the extra baselines used in ablations.

#include <optional>
#include <string>

#include "core/ggr.hpp"
#include "core/ophr.hpp"
#include "core/ordering.hpp"
#include "table/fd.hpp"
#include "table/table.hpp"

namespace llmq::core {

enum class Policy {
  Original,      // data order, schema field order (paper's "Original")
  SortedFixed,   // lexicographic row sort, original field order (ablation)
  StatsFixed,    // stats-ranked fixed field order + row sort (ablation)
  Ggr,           // the paper's contribution
  Ophr,          // exact solver (small tables only)
};

std::string to_string(Policy p);
std::optional<Policy> policy_from_string(const std::string& name);

struct PlanRequest {
  Policy policy = Policy::Ggr;
  GgrOptions ggr;    // honored when policy == Ggr
  OphrOptions ophr;  // honored when policy == Ophr
};

struct Plan {
  Ordering ordering;
  double solver_seconds = 0.0;
  double planner_phc = 0.0;  // PHC as reported by the planner (0 baselines)
  bool timed_out = false;    // OPHR only
};

/// Plan a request schedule for `t` under `req`. For OPHR, a timeout yields
/// `timed_out=true` with the Original ordering as a safe fallback.
Plan plan_ordering(const table::Table& t, const table::FdSet& fds,
                   const PlanRequest& req);

}  // namespace llmq::core
