#pragma once
// Request orderings (paper §3.1).
//
// A "request schedule" for a table with n rows and m fields is (a) a
// permutation of the rows and (b) an independent permutation of the fields
// *per row* — the paper's key departure from fixed field orderings. The
// Ordering class is the value type every planner (OPHR, GGR, baselines)
// produces and every consumer (PHC metric, prompt builder, serving engine)
// accepts.

#include <cstddef>
#include <vector>

#include "table/table.hpp"

namespace llmq::core {

class Ordering {
 public:
  Ordering() = default;
  Ordering(std::vector<std::size_t> row_order,
           std::vector<std::vector<std::size_t>> field_orders);

  /// Identity ordering: original row order, schema field order in each row.
  static Ordering identity(std::size_t n_rows, std::size_t n_fields);

  /// Same field permutation applied to every row (fixed field ordering).
  static Ordering fixed_fields(std::vector<std::size_t> row_order,
                               const std::vector<std::size_t>& field_order);

  std::size_t num_rows() const { return row_order_.size(); }

  /// Original-table index of the row emitted at output position `pos`.
  std::size_t row_at(std::size_t pos) const { return row_order_[pos]; }

  /// Field order (original column indices) for output position `pos`.
  const std::vector<std::size_t>& fields_at(std::size_t pos) const {
    return field_orders_[pos];
  }

  const std::vector<std::size_t>& row_order() const { return row_order_; }
  const std::vector<std::vector<std::size_t>>& field_orders() const {
    return field_orders_;
  }

  /// True iff row_order is a permutation of [0, n) and every per-row field
  /// order is a permutation of [0, m). An Ordering that fails this check
  /// would silently drop or duplicate data — validate() is cheap and the
  /// planners' tests always call it.
  bool validate(std::size_t n_rows, std::size_t n_fields) const;

  /// Cell of `t` at output position (pos, f) under this ordering.
  const std::string& cell(const table::Table& t, std::size_t pos,
                          std::size_t f) const {
    return t.cell(row_order_[pos], field_orders_[pos][f]);
  }

 private:
  std::vector<std::size_t> row_order_;
  std::vector<std::vector<std::size_t>> field_orders_;
};

}  // namespace llmq::core
