#include "core/baselines.hpp"

#include <algorithm>
#include <numeric>
#include <string_view>
#include <unordered_map>

#include "tokenizer/tokenizer.hpp"

namespace llmq::core {

Ordering original_ordering(const table::Table& t) {
  return Ordering::identity(t.num_rows(), t.num_cols());
}

Ordering stats_fixed_ordering(const table::Table& t) {
  const table::TableStats stats = table::compute_stats(t);
  const std::vector<std::size_t> field_order = stats.fields_by_expected_score();
  const std::vector<std::size_t> row_order = t.sorted_row_order(field_order);
  return Ordering::fixed_fields(row_order, field_order);
}

SubOrdering stats_fixed_subordering(
    const table::Table& t, const std::vector<std::uint32_t>& rows,
    const std::vector<std::uint32_t>& cols,
    const std::vector<std::vector<std::size_t>>* closures) {
  const auto& tok = tokenizer::global_tokenizer();

  // Per-column expected score over just these rows.
  struct ColScore {
    std::size_t col;
    double score;
  };
  std::vector<ColScore> scored;
  scored.reserve(cols.size());
  for (auto c : cols) {
    std::unordered_map<std::string_view, std::size_t> counts;
    double sum_sq = 0.0;
    for (auto r : rows) {
      const std::string& v = t.cell(r, c);
      ++counts[v];
    }
    for (const auto& [v, cnt] : counts) {
      const double l = static_cast<double>(tok.count(v));
      sum_sq += l * l * static_cast<double>(cnt);
    }
    const double avg_sq =
        rows.empty() ? 0.0 : sum_sq / static_cast<double>(rows.size());
    const double repeats =
        counts.empty()
            ? 0.0
            : static_cast<double>(rows.size()) /
                      static_cast<double>(counts.size()) -
                  1.0;
    scored.push_back(ColScore{c, repeats > 0.0 ? avg_sq * repeats : 0.0});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ColScore& a, const ColScore& b) {
                     return a.score > b.score;
                   });

  SubOrdering out;
  out.field_order.reserve(cols.size());
  if (closures == nullptr) {
    for (const auto& cs : scored) out.field_order.push_back(cs.col);
  } else {
    // Emit each field followed by its not-yet-emitted FD closure: fields
    // that repeat together stay adjacent, so a value match extends through
    // the whole dependent run instead of breaking on an interleaved
    // unrelated field.
    std::vector<bool> emitted(t.num_cols(), false);
    std::vector<bool> in_view(t.num_cols(), false);
    for (auto c : cols) in_view[c] = true;
    auto emit = [&](std::size_t c) {
      if (!in_view[c] || emitted[c]) return;
      emitted[c] = true;
      out.field_order.push_back(c);
    };
    for (const auto& cs : scored) {
      if (emitted[cs.col]) continue;
      emit(cs.col);
      for (std::size_t dep : (*closures)[cs.col]) emit(dep);
    }
  }

  out.row_order.assign(rows.begin(), rows.end());
  std::stable_sort(out.row_order.begin(), out.row_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     for (std::size_t f : out.field_order) {
                       const auto cmp = t.cell(a, f).compare(t.cell(b, f));
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  return out;
}

Ordering sorted_original_fields(const table::Table& t) {
  std::vector<std::size_t> field_order(t.num_cols());
  std::iota(field_order.begin(), field_order.end(), 0);
  return Ordering::fixed_fields(t.sorted_row_order(field_order), field_order);
}

Ordering random_ordering(const table::Table& t, util::Rng& rng) {
  std::vector<std::size_t> rows(t.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  rng.shuffle(rows);
  std::vector<std::vector<std::size_t>> fields;
  fields.reserve(t.num_rows());
  std::vector<std::size_t> base(t.num_cols());
  std::iota(base.begin(), base.end(), 0);
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    auto fo = base;
    rng.shuffle(fo);
    fields.push_back(std::move(fo));
  }
  return Ordering(std::move(rows), std::move(fields));
}

}  // namespace llmq::core
