#include "core/windowed.hpp"

#include <chrono>
#include <numeric>
#include <stdexcept>

namespace llmq::core {

WindowedResult windowed_ggr(const table::Table& t, const table::FdSet& fds,
                            const WindowedOptions& options) {
  if (t.num_rows() == 0) throw std::invalid_argument("windowed_ggr: empty table");
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  const std::size_t n = t.num_rows();
  const std::size_t window =
      options.window_rows == 0 ? n : std::max<std::size_t>(1, options.window_rows);

  WindowedResult out;
  std::vector<std::size_t> row_order;
  std::vector<std::vector<std::size_t>> field_orders;
  row_order.reserve(n);
  field_orders.reserve(n);

  for (std::size_t begin = 0; begin < n; begin += window) {
    const std::size_t end = std::min(n, begin + window);
    std::vector<std::size_t> window_rows(end - begin);
    std::iota(window_rows.begin(), window_rows.end(), begin);
    const table::Table sub = t.take_rows(window_rows);

    GgrResult res = ggr(sub, fds, options.ggr);
    for (std::size_t pos = 0; pos < res.ordering.num_rows(); ++pos) {
      // Remap window-local row ids back to the full table.
      row_order.push_back(begin + res.ordering.row_at(pos));
      field_orders.push_back(res.ordering.fields_at(pos));
    }
    out.counters.recursion_nodes += res.counters.recursion_nodes;
    out.counters.groups_scored += res.counters.groups_scored;
    out.counters.fallbacks += res.counters.fallbacks;
    out.counters.fd_fields_skipped += res.counters.fd_fields_skipped;
    ++out.windows;
  }

  out.ordering = Ordering(std::move(row_order), std::move(field_orders));
  out.phc = phc(t, out.ordering, options.ggr.measure);
  out.solve_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

}  // namespace llmq::core
