#include "core/phc.hpp"

#include <unordered_map>

#include "tokenizer/tokenizer.hpp"

namespace llmq::core {

CellLengths::CellLengths(const table::Table& t, LengthMeasure measure)
    : n_cols_(t.num_cols()), measure_(measure) {
  len_.resize(t.num_rows() * t.num_cols());
  const auto& tok = tokenizer::global_tokenizer();
  // Token counting is the expensive case; memoize per distinct string so
  // tables with heavy repetition (the interesting ones) tokenize each
  // value once.
  std::unordered_map<std::string_view, double> memo;
  for (std::size_t c = 0; c < t.num_cols(); ++c) {
    for (std::size_t r = 0; r < t.num_rows(); ++r) {
      const std::string& v = t.cell(r, c);
      double l = 0.0;
      switch (measure) {
        case LengthMeasure::Tokens: {
          auto it = memo.find(v);
          if (it == memo.end())
            it = memo.emplace(v, static_cast<double>(tok.count(v))).first;
          l = it->second;
          break;
        }
        case LengthMeasure::Chars:
          l = static_cast<double>(v.size());
          break;
        case LengthMeasure::Unit:
          l = 1.0;
          break;
      }
      len_[r * n_cols_ + c] = l;
    }
  }
}

namespace {

PhcBreakdown evaluate(const table::Table& t, const CellLengths& lengths,
                      const Ordering& ordering, MatchMode mode,
                      bool want_detail) {
  PhcBreakdown out;
  const std::size_t n = ordering.num_rows();
  const std::size_t m = t.num_cols();
  if (want_detail) out.per_row.assign(n, 0.0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t row = ordering.row_at(pos);
    const auto& fields = ordering.fields_at(pos);
    if (pos > 0) {
      for (std::size_t f = 0; f < m; ++f)
        out.max_possible += lengths.sq_len(row, fields[f]);
    }
    if (pos == 0) continue;
    const std::size_t prev_row = ordering.row_at(pos - 1);
    const auto& prev_fields = ordering.fields_at(pos - 1);
    double hit = 0.0;
    for (std::size_t f = 0; f < m; ++f) {
      const std::size_t col = fields[f];
      const std::size_t prev_col = prev_fields[f];
      if (mode == MatchMode::FieldAndValue && col != prev_col) break;
      if (t.cell(row, col) != t.cell(prev_row, prev_col)) break;
      hit += lengths.sq_len(row, col);
    }
    out.total += hit;
    if (hit > 0.0) ++out.rows_with_hits;
    if (want_detail) out.per_row[pos] = hit;
  }
  return out;
}

}  // namespace

double phc(const table::Table& t, const Ordering& ordering,
           LengthMeasure measure, MatchMode mode) {
  const CellLengths lengths(t, measure);
  return evaluate(t, lengths, ordering, mode, /*want_detail=*/false).total;
}

PhcBreakdown phc_breakdown(const table::Table& t, const Ordering& ordering,
                           LengthMeasure measure, MatchMode mode) {
  const CellLengths lengths(t, measure);
  return evaluate(t, lengths, ordering, mode, /*want_detail=*/true);
}

double phc_with_lengths(const table::Table& t, const CellLengths& lengths,
                        const Ordering& ordering, MatchMode mode) {
  return evaluate(t, lengths, ordering, mode, /*want_detail=*/false).total;
}

TokenPhr token_phr(const std::vector<std::vector<std::uint32_t>>& requests) {
  TokenPhr out;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    out.total_tokens += requests[i].size();
    if (i == 0) continue;
    const auto& prev = requests[i - 1];
    const auto& cur = requests[i];
    std::size_t k = 0;
    const std::size_t lim = std::min(prev.size(), cur.size());
    while (k < lim && prev[k] == cur[k]) ++k;
    out.hit_tokens += k;
  }
  return out;
}

}  // namespace llmq::core
