#pragma once
// Prefix Hit Count — the paper's objective (Eq. 1 and 2, §3.1).
//
//   PHC(L) = sum over rows r of hit(L, r)
//   hit(L, r) = max over c of sum_{f<=c} len(L[r][f])^2, subject to
//               L[r][f] == L[r-1][f] for every f <= c (consecutive prefix
//               starting at the first cell, exact value matches only).
//
// Squared lengths model the quadratic token-processing cost of attention.
// Lengths are measured in tokens by default (the unit the KV cache works
// in); char/unit measures exist for analytical case studies and tests.
//
// Match semantics: Eq. 2 compares cell *values* positionally. Real prompts
// serialize "field_name": "value" pairs, so two positions only share bytes
// when both the field and the value agree. The default MatchMode therefore
// requires (field, value) equality; ValueOnly implements the literal
// equation and is kept for analysis (see DESIGN.md §7).

#include <cstdint>
#include <vector>

#include "core/ordering.hpp"
#include "table/table.hpp"

namespace llmq::core {

enum class LengthMeasure {
  Tokens,  // token count under the global tokenizer (default)
  Chars,   // byte length
  Unit,    // every cell has length 1 (the paper's §3.2 case studies)
};

enum class MatchMode {
  FieldAndValue,  // positions match iff same original column AND equal value
  ValueOnly,      // literal Eq. 2: positions match iff equal value
};

/// Precomputed per-cell lengths for a table; computing token counts once
/// per distinct value makes repeated PHC evaluation cheap inside planners.
class CellLengths {
 public:
  CellLengths(const table::Table& t, LengthMeasure measure);

  double len(std::size_t row, std::size_t col) const {
    return len_[row * n_cols_ + col];
  }
  double sq_len(std::size_t row, std::size_t col) const {
    const double l = len(row, col);
    return l * l;
  }
  LengthMeasure measure() const { return measure_; }

 private:
  std::vector<double> len_;
  std::size_t n_cols_;
  LengthMeasure measure_;
};

struct PhcBreakdown {
  double total = 0.0;               // PHC (squared-length units)
  double max_possible = 0.0;        // sum of sq lengths of all cells in rows 2..n
  std::vector<double> per_row;      // hit(L, r) per output row
  std::size_t rows_with_hits = 0;   // rows with non-zero hit

  /// PHC as a fraction of the total chargeable content. This is the
  /// squared-length analogue of the paper's prefix hit rate.
  double hit_fraction() const {
    return max_possible > 0.0 ? total / max_possible : 0.0;
  }
};

/// Evaluate PHC of `ordering` over `t`.
double phc(const table::Table& t, const Ordering& ordering,
           LengthMeasure measure = LengthMeasure::Tokens,
           MatchMode mode = MatchMode::FieldAndValue);

/// Same, with per-row detail.
PhcBreakdown phc_breakdown(const table::Table& t, const Ordering& ordering,
                           LengthMeasure measure = LengthMeasure::Tokens,
                           MatchMode mode = MatchMode::FieldAndValue);

/// PHC evaluated against precomputed lengths (planner hot path).
double phc_with_lengths(const table::Table& t, const CellLengths& lengths,
                        const Ordering& ordering,
                        MatchMode mode = MatchMode::FieldAndValue);

/// Token-level prefix hit rate of a serialized request stream: for each
/// request, tokens shared with the immediately preceding request's prefix,
/// divided by total tokens. This is what the serving-side cache actually
/// sees (it includes the shared system prompt, JSON syntax, etc.), and is
/// the number reported as PHR in the paper's Tables 2-4.
struct TokenPhr {
  std::uint64_t hit_tokens = 0;
  std::uint64_t total_tokens = 0;
  double rate() const {
    return total_tokens ? static_cast<double>(hit_tokens) /
                              static_cast<double>(total_tokens)
                        : 0.0;
  }
};
TokenPhr token_phr(const std::vector<std::vector<std::uint32_t>>& requests);

}  // namespace llmq::core
