#include "core/ordering.hpp"

#include <numeric>
#include <stdexcept>

namespace llmq::core {

Ordering::Ordering(std::vector<std::size_t> row_order,
                   std::vector<std::vector<std::size_t>> field_orders)
    : row_order_(std::move(row_order)), field_orders_(std::move(field_orders)) {
  if (row_order_.size() != field_orders_.size())
    throw std::invalid_argument(
        "Ordering: row_order and field_orders size mismatch");
}

Ordering Ordering::identity(std::size_t n_rows, std::size_t n_fields) {
  std::vector<std::size_t> rows(n_rows);
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<std::size_t> fields(n_fields);
  std::iota(fields.begin(), fields.end(), 0);
  return Ordering(std::move(rows),
                  std::vector<std::vector<std::size_t>>(n_rows, fields));
}

Ordering Ordering::fixed_fields(std::vector<std::size_t> row_order,
                                const std::vector<std::size_t>& field_order) {
  const std::size_t n = row_order.size();
  return Ordering(std::move(row_order),
                  std::vector<std::vector<std::size_t>>(n, field_order));
}

namespace {
bool is_permutation_of_iota(const std::vector<std::size_t>& v,
                            std::size_t n) {
  if (v.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (std::size_t x : v) {
    if (x >= n || seen[x]) return false;
    seen[x] = true;
  }
  return true;
}
}  // namespace

bool Ordering::validate(std::size_t n_rows, std::size_t n_fields) const {
  if (!is_permutation_of_iota(row_order_, n_rows)) return false;
  if (field_orders_.size() != n_rows) return false;
  for (const auto& fo : field_orders_)
    if (!is_permutation_of_iota(fo, n_fields)) return false;
  return true;
}

}  // namespace llmq::core
