#include "table/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace llmq::table {

namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void write_cell(const std::string& s, std::ostream& os) {
  if (!needs_quoting(s)) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

/// Parses one logical CSV record (handles quoted newlines). Returns false
/// at end of input with no record.
bool read_record(std::istream& is, std::vector<std::string>& cells) {
  cells.clear();
  std::string cell;
  bool in_quotes = false;
  bool any = false;
  int ch;
  while ((ch = is.get()) != std::char_traits<char>::eof()) {
    any = true;
    const char c = static_cast<char>(ch);
    if (in_quotes) {
      if (c == '"') {
        if (is.peek() == '"') {
          cell += '"';
          is.get();
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch
    } else if (c == '\n') {
      cells.push_back(std::move(cell));
      return true;
    } else {
      cell += c;
    }
  }
  if (in_quotes) throw std::runtime_error("CSV: unterminated quote");
  if (!any) return false;
  cells.push_back(std::move(cell));
  return true;
}

}  // namespace

void write_csv(const Table& t, std::ostream& os) {
  for (std::size_t c = 0; c < t.num_cols(); ++c) {
    if (c) os << ',';
    write_cell(t.schema().field(c).name, os);
  }
  os << '\n';
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c < t.num_cols(); ++c) {
      if (c) os << ',';
      write_cell(t.cell(r, c), os);
    }
    os << '\n';
  }
}

std::string to_csv(const Table& t) {
  std::ostringstream oss;
  write_csv(t, oss);
  return oss.str();
}

void write_csv_file(const Table& t, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("CSV: cannot open for write: " + path);
  write_csv(t, f);
}

Table read_csv(std::istream& is) {
  std::vector<std::string> cells;
  if (!read_record(is, cells))
    throw std::runtime_error("CSV: empty input (no header)");
  Table t(Schema::of_names(cells));
  const std::size_t arity = t.num_cols();
  while (read_record(is, cells)) {
    if (cells.size() == 1 && cells[0].empty()) continue;  // trailing newline
    if (cells.size() != arity)
      throw std::runtime_error("CSV: ragged row (expected " +
                               std::to_string(arity) + " cells, got " +
                               std::to_string(cells.size()) + ")");
    t.append_row(std::move(cells));
    cells = {};
  }
  return t;
}

Table from_csv(const std::string& text) {
  std::istringstream iss(text);
  return read_csv(iss);
}

Table read_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("CSV: cannot open for read: " + path);
  return read_csv(f);
}

}  // namespace llmq::table
