#pragma once
// Table schema: ordered, named fields.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace llmq::table {

enum class FieldType { Text, Int, Float, Bool };

std::string_view to_string(FieldType t);

struct Field {
  std::string name;
  FieldType type = FieldType::Text;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Convenience: all-Text schema from names.
  static Schema of_names(std::vector<std::string> names);

  std::size_t size() const { return fields_.size(); }
  const Field& field(std::size_t i) const { return fields_.at(i); }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of a field by name; nullopt if absent.
  std::optional<std::size_t> index_of(std::string_view name) const;

  /// Index of a field by name; throws std::out_of_range if absent.
  std::size_t require(std::string_view name) const;

  bool has(std::string_view name) const { return index_of(name).has_value(); }

  /// New schema keeping only `indices`, in that order.
  Schema project(const std::vector<std::size_t>& indices) const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Field> fields_;
};

}  // namespace llmq::table
