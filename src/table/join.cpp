#include "table/join.hpp"

#include <unordered_map>
#include <vector>

namespace llmq::table {

Table hash_join(const Table& left, const std::string& left_key,
                const Table& right, const std::string& right_key) {
  const std::size_t lk = left.schema().require(left_key);
  const std::size_t rk = right.schema().require(right_key);

  // Build output schema.
  std::vector<Field> fields = left.schema().fields();
  std::vector<std::size_t> right_cols;
  for (std::size_t c = 0; c < right.num_cols(); ++c) {
    if (c == rk) continue;
    right_cols.push_back(c);
    Field f = right.schema().field(c);
    bool clash = false;
    for (const auto& lf : fields)
      if (lf.name == f.name) clash = true;
    if (clash) f.name += "_r";
    fields.push_back(std::move(f));
  }
  Table out{Schema(std::move(fields))};

  // Build side: right table keyed by join column.
  std::unordered_map<std::string_view, std::vector<std::size_t>> build;
  build.reserve(right.num_rows() * 2);
  for (std::size_t r = 0; r < right.num_rows(); ++r)
    build[right.cell(r, rk)].push_back(r);

  for (std::size_t l = 0; l < left.num_rows(); ++l) {
    const auto it = build.find(left.cell(l, lk));
    if (it == build.end()) continue;
    for (std::size_t r : it->second) {
      std::vector<std::string> cells;
      cells.reserve(out.num_cols());
      for (std::size_t c = 0; c < left.num_cols(); ++c)
        cells.push_back(left.cell(l, c));
      for (std::size_t c : right_cols) cells.push_back(right.cell(r, c));
      out.append_row(std::move(cells));
    }
  }
  return out;
}

}  // namespace llmq::table
