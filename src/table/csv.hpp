#pragma once
// RFC-4180-style CSV reader/writer for Table.
//
// Used by the examples to round-trip datasets to disk and by users who
// want to run the reordering planner over their own data.

#include <iosfwd>
#include <string>

#include "table/table.hpp"

namespace llmq::table {

/// Serialize with a header row. Quotes cells containing separators,
/// quotes, or newlines.
void write_csv(const Table& t, std::ostream& os);
std::string to_csv(const Table& t);
void write_csv_file(const Table& t, const std::string& path);

/// Parse; first row is the header. All fields typed Text.
/// Throws std::runtime_error on ragged rows or unterminated quotes.
Table read_csv(std::istream& is);
Table from_csv(const std::string& text);
Table read_csv_file(const std::string& path);

}  // namespace llmq::table
