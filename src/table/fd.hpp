#pragma once
// Functional dependencies (paper §4.2.1).
//
// GGR treats FDs as *hints*: when a value in field f is chosen for a row's
// prefix, every field functionally tied to f is placed directly after f and
// removed from later recursion. The paper's Appendix B lists FD groups per
// dataset (e.g. [beer/beerId, beer/name]); we model an FdSet as symmetric
// groups plus an optional exact miner for discovering them from data.

#include <cstddef>
#include <string>
#include <vector>

#include "table/table.hpp"

namespace llmq::table {

class FdSet {
 public:
  FdSet() = default;

  /// Declare a mutual dependency group by field name (every pair in the
  /// group is an FD in both directions, matching the paper's notation).
  void add_group(std::vector<std::string> field_names);

  /// Declare a single directed FD: determinant -> dependent.
  void add(const std::string& determinant, const std::string& dependent);

  /// Fields inferred by `field` (its FD closure, excluding itself),
  /// resolved against `schema` to column indices. Fields named in the FdSet
  /// but absent from the schema are ignored — the planner may run on a
  /// projection of the original table.
  std::vector<std::size_t> inferred_columns(const Schema& schema,
                                            std::size_t field) const;

  bool empty() const { return edges_.empty(); }
  std::size_t num_edges() const { return edges_.size(); }

  struct Edge {
    std::string determinant;
    std::string dependent;
  };
  const std::vector<Edge>& edges() const { return edges_; }

 private:
  std::vector<Edge> edges_;
};

/// Fraction of rows violating determinant -> dependent (0 means exact FD).
/// A pair of rows "violates" when they agree on the determinant but differ
/// on the dependent; we report violating rows / total rows.
double fd_violation_rate(const Table& t, std::size_t determinant,
                         std::size_t dependent);

/// Discover all pairwise FDs with violation rate <= `max_violation`.
/// O(m^2 * n); intended for planner setup, not per-query hot paths.
FdSet mine_fds(const Table& t, double max_violation = 0.0);

}  // namespace llmq::table
