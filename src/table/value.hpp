#pragma once
// Cell values.
//
// All table cells are stored as strings: the LLM operator ultimately
// serializes every cell into prompt text, and the reordering algorithms
// only need exact-equality and token length. Typed accessors parse on
// demand for the relational operators (aggregation, numeric filters).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace llmq::table {

/// Parse helpers; return nullopt on malformed input rather than throwing,
/// since analytics data is routinely dirty.
std::optional<std::int64_t> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);
std::optional<bool> parse_bool(std::string_view s);

}  // namespace llmq::table
