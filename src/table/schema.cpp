#include "table/schema.hpp"

#include <stdexcept>

namespace llmq::table {

std::string_view to_string(FieldType t) {
  switch (t) {
    case FieldType::Text: return "text";
    case FieldType::Int: return "int";
    case FieldType::Float: return "float";
    case FieldType::Bool: return "bool";
  }
  return "?";
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    for (std::size_t j = i + 1; j < fields_.size(); ++j) {
      if (fields_[i].name == fields_[j].name)
        throw std::invalid_argument("Schema: duplicate field name '" +
                                    fields_[i].name + "'");
    }
  }
}

Schema Schema::of_names(std::vector<std::string> names) {
  std::vector<Field> fs;
  fs.reserve(names.size());
  for (auto& n : names) fs.push_back(Field{std::move(n), FieldType::Text});
  return Schema(std::move(fs));
}

std::optional<std::size_t> Schema::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i)
    if (fields_[i].name == name) return i;
  return std::nullopt;
}

std::size_t Schema::require(std::string_view name) const {
  if (auto i = index_of(name)) return *i;
  throw std::out_of_range("Schema: no field named '" + std::string(name) +
                          "'");
}

Schema Schema::project(const std::vector<std::size_t>& indices) const {
  std::vector<Field> fs;
  fs.reserve(indices.size());
  for (std::size_t i : indices) fs.push_back(fields_.at(i));
  return Schema(std::move(fs));
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type)
      return false;
  }
  return true;
}

}  // namespace llmq::table
