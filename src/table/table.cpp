#include "table/table.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace llmq::table {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.size());
}

void Table::append_row(std::vector<std::string> cells) {
  if (cells.size() != schema_.size())
    throw std::invalid_argument("Table::append_row: arity mismatch");
  for (std::size_t c = 0; c < cells.size(); ++c)
    columns_[c].push_back(std::move(cells[c]));
  ++num_rows_;
}

std::vector<std::string> Table::row(std::size_t r) const {
  std::vector<std::string> out;
  out.reserve(num_cols());
  for (std::size_t c = 0; c < num_cols(); ++c) out.push_back(columns_[c][r]);
  return out;
}

Table Table::take_rows(const std::vector<std::size_t>& row_indices) const {
  Table out(schema_);
  for (std::size_t c = 0; c < num_cols(); ++c) {
    out.columns_[c].reserve(row_indices.size());
    for (std::size_t r : row_indices) out.columns_[c].push_back(columns_[c][r]);
  }
  out.num_rows_ = row_indices.size();
  return out;
}

Table Table::project(const std::vector<std::size_t>& col_indices) const {
  Table out(schema_.project(col_indices));
  for (std::size_t i = 0; i < col_indices.size(); ++i)
    out.columns_[i] = columns_.at(col_indices[i]);
  out.num_rows_ = num_rows_;
  return out;
}

Table Table::project(const std::vector<std::string>& col_names) const {
  std::vector<std::size_t> idx;
  idx.reserve(col_names.size());
  for (const auto& n : col_names) idx.push_back(schema_.require(n));
  return project(idx);
}

Table Table::head(std::size_t n) const {
  std::vector<std::size_t> idx(std::min(n, num_rows_));
  std::iota(idx.begin(), idx.end(), 0);
  return take_rows(idx);
}

void Table::append_table(const Table& other) {
  if (!(schema_ == other.schema_))
    throw std::invalid_argument("Table::append_table: schema mismatch");
  for (std::size_t c = 0; c < num_cols(); ++c)
    columns_[c].insert(columns_[c].end(), other.columns_[c].begin(),
                       other.columns_[c].end());
  num_rows_ += other.num_rows_;
}

std::vector<Table::Group> Table::group_by_value(std::size_t col) const {
  std::vector<Group> groups;
  std::unordered_map<std::string_view, std::size_t> index;
  index.reserve(num_rows_ * 2);
  for (std::size_t r = 0; r < num_rows_; ++r) {
    const std::string& v = columns_[col][r];
    auto [it, inserted] = index.try_emplace(v, groups.size());
    if (inserted) groups.push_back(Group{v, {}});
    groups[it->second].rows.push_back(r);
  }
  return groups;
}

std::vector<std::size_t> Table::sorted_row_order(
    const std::vector<std::size_t>& field_priority) const {
  std::vector<std::size_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     for (std::size_t f : field_priority) {
                       const auto cmp = columns_[f][a].compare(columns_[f][b]);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  return order;
}

bool Table::operator==(const Table& other) const {
  return schema_ == other.schema_ && columns_ == other.columns_;
}

}  // namespace llmq::table
