#include "table/fd.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace llmq::table {

void FdSet::add_group(std::vector<std::string> field_names) {
  for (std::size_t i = 0; i < field_names.size(); ++i)
    for (std::size_t j = 0; j < field_names.size(); ++j)
      if (i != j) add(field_names[i], field_names[j]);
}

void FdSet::add(const std::string& determinant, const std::string& dependent) {
  for (const auto& e : edges_)
    if (e.determinant == determinant && e.dependent == dependent) return;
  edges_.push_back(Edge{determinant, dependent});
}

std::vector<std::size_t> FdSet::inferred_columns(const Schema& schema,
                                                 std::size_t field) const {
  const std::string& name = schema.field(field).name;
  // Transitive closure over the (small) edge list.
  std::vector<std::string> frontier{name};
  std::unordered_set<std::string> seen{name};
  std::vector<std::size_t> out;
  while (!frontier.empty()) {
    const std::string cur = std::move(frontier.back());
    frontier.pop_back();
    for (const auto& e : edges_) {
      if (e.determinant != cur || seen.count(e.dependent)) continue;
      seen.insert(e.dependent);
      frontier.push_back(e.dependent);
      if (auto idx = schema.index_of(e.dependent)) out.push_back(*idx);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double fd_violation_rate(const Table& t, std::size_t determinant,
                         std::size_t dependent) {
  if (t.num_rows() == 0) return 0.0;
  // For each determinant value, the majority dependent value is compliant;
  // all other rows in the group are violations.
  std::unordered_map<std::string_view,
                     std::unordered_map<std::string_view, std::size_t>>
      groups;
  for (std::size_t r = 0; r < t.num_rows(); ++r)
    ++groups[t.cell(r, determinant)][t.cell(r, dependent)];
  std::size_t violations = 0;
  for (const auto& [det, deps] : groups) {
    std::size_t total = 0, best = 0;
    for (const auto& [dep, cnt] : deps) {
      total += cnt;
      best = std::max(best, cnt);
    }
    violations += total - best;
  }
  return static_cast<double>(violations) / static_cast<double>(t.num_rows());
}

FdSet mine_fds(const Table& t, double max_violation) {
  FdSet out;
  for (std::size_t a = 0; a < t.num_cols(); ++a) {
    for (std::size_t b = 0; b < t.num_cols(); ++b) {
      if (a == b) continue;
      if (fd_violation_rate(t, a, b) <= max_violation)
        out.add(t.schema().field(a).name, t.schema().field(b).name);
    }
  }
  return out;
}

}  // namespace llmq::table
