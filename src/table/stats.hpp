#pragma once
// Table statistics.
//
// GGR (paper §4.2.2) uses per-column statistics — cardinality and value
// length distributions — that "are readily available in many databases".
// These drive (a) the HITCOUNT early-stopping threshold, (b) the
// stats-ranked fixed field ordering GGR falls back to, and (c) the
// expected-contribution score E[len]^2 * (n/card - 1).

#include <cstddef>
#include <string>
#include <vector>

#include "table/table.hpp"
#include "tokenizer/tokenizer.hpp"

namespace llmq::table {

struct ColumnStats {
  std::string name;
  std::size_t cardinality = 0;       // distinct values
  double avg_len_tokens = 0.0;       // E[len] in tokens
  double avg_sq_len_tokens = 0.0;    // E[len^2] in tokens
  double max_len_tokens = 0.0;
  std::size_t max_group_size = 0;    // largest identical-value run possible

  /// Expected PHC contribution if this column led a fixed ordering:
  /// every value repeats n/card times on average; each repeat after the
  /// first is a hit worth E[len]^2.
  double expected_hit_score(std::size_t n_rows) const;
};

struct TableStats {
  std::vector<ColumnStats> columns;
  std::size_t n_rows = 0;

  const ColumnStats& column(std::size_t i) const { return columns.at(i); }

  /// Column indices ranked by descending expected_hit_score — the fixed
  /// field ordering used by the stats fallback and baselines.
  std::vector<std::size_t> fields_by_expected_score() const;
};

/// Compute statistics for every column. Token lengths use the global
/// tokenizer (lengths are measured once per *distinct* value).
TableStats compute_stats(const Table& t);

}  // namespace llmq::table
