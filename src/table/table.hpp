#pragma once
// Columnar in-memory table.
//
// The substrate the reordering algorithms, query executor, and dataset
// generators operate on. Column-major storage mirrors how analytical
// engines hold data and makes per-column scans (distinct-value grouping,
// statistics) cache-friendly — these scans dominate GGR's runtime.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "table/schema.hpp"

namespace llmq::table {

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_cols() const { return schema_.size(); }

  /// Append a row; `cells.size()` must equal `num_cols()`.
  void append_row(std::vector<std::string> cells);

  const std::string& cell(std::size_t row, std::size_t col) const {
    return columns_[col][row];
  }
  std::string& cell_mut(std::size_t row, std::size_t col) {
    return columns_[col][row];
  }

  const std::vector<std::string>& column(std::size_t col) const {
    return columns_.at(col);
  }
  const std::vector<std::string>& column(std::string_view name) const {
    return columns_.at(schema_.require(name));
  }

  /// Materialize row `r` in schema order.
  std::vector<std::string> row(std::size_t r) const;

  /// New table with only `row_indices`, in that order.
  Table take_rows(const std::vector<std::size_t>& row_indices) const;

  /// New table with only `col_indices`, in that order.
  Table project(const std::vector<std::size_t>& col_indices) const;
  Table project(const std::vector<std::string>& col_names) const;

  /// First `n` rows (or all if fewer) — used by the OPHR-sample ablation.
  Table head(std::size_t n) const;

  /// Concatenate another table with an identical schema.
  void append_table(const Table& other);

  /// Distinct values of a column with their row lists, in first-seen order.
  struct Group {
    std::string value;
    std::vector<std::size_t> rows;
  };
  std::vector<Group> group_by_value(std::size_t col) const;

  /// Rows sorted lexicographically by the given field priority (indices
  /// into the schema). Returns the permutation, does not reorder storage.
  std::vector<std::size_t> sorted_row_order(
      const std::vector<std::size_t>& field_priority) const;

  bool operator==(const Table& other) const;

 private:
  Schema schema_;
  std::vector<std::vector<std::string>> columns_;
  std::size_t num_rows_ = 0;
};

}  // namespace llmq::table
