#include "table/value.hpp"

#include <cerrno>
#include <cstdlib>

#include "util/strings.hpp"

namespace llmq::table {

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = util::trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> parse_double(std::string_view s) {
  s = util::trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::optional<bool> parse_bool(std::string_view s) {
  const std::string t = util::to_lower(util::trim(s));
  if (t == "true" || t == "1" || t == "yes") return true;
  if (t == "false" || t == "0" || t == "no") return false;
  return std::nullopt;
}

}  // namespace llmq::table
