#pragma once
// Hash joins.
//
// The paper's benchmark tables are produced by joining review tables with
// metadata tables (e.g. reviews ⋈ products on asin; BIRD Posts ⋈ Comments
// on PostId). The join is what *creates* the repeated metadata values that
// GGR exploits, so the data generators build their tables through this
// code path rather than fabricating repetition directly.

#include <string>

#include "table/table.hpp"

namespace llmq::table {

/// Inner equi-join. Output schema: all left fields, then all right fields
/// except the right key. Duplicate names from the right side get a "_r"
/// suffix. Output row order: left-table order, matches in right-table order.
Table hash_join(const Table& left, const std::string& left_key,
                const Table& right, const std::string& right_key);

}  // namespace llmq::table
