#include "table/stats.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace llmq::table {

double ColumnStats::expected_hit_score(std::size_t n_rows) const {
  if (cardinality == 0) return 0.0;
  const double repeats =
      static_cast<double>(n_rows) / static_cast<double>(cardinality) - 1.0;
  return repeats <= 0.0 ? 0.0 : avg_sq_len_tokens * repeats;
}

std::vector<std::size_t> TableStats::fields_by_expected_score() const {
  std::vector<std::size_t> order(columns.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return columns[a].expected_hit_score(n_rows) >
           columns[b].expected_hit_score(n_rows);
  });
  return order;
}

TableStats compute_stats(const Table& t) {
  const auto& tok = tokenizer::global_tokenizer();
  TableStats out;
  out.n_rows = t.num_rows();
  out.columns.reserve(t.num_cols());
  for (std::size_t c = 0; c < t.num_cols(); ++c) {
    ColumnStats cs;
    cs.name = t.schema().field(c).name;
    std::unordered_map<std::string_view, std::size_t> counts;
    counts.reserve(t.num_rows() * 2);
    for (const auto& v : t.column(c)) ++counts[v];
    cs.cardinality = counts.size();
    double sum_len = 0.0, sum_sq = 0.0;
    for (const auto& [value, count] : counts) {
      const auto len = static_cast<double>(tok.count(value));
      // Weight by occurrence count so stats describe rows, not the
      // distinct-value set.
      sum_len += len * static_cast<double>(count);
      sum_sq += len * len * static_cast<double>(count);
      cs.max_len_tokens = std::max(cs.max_len_tokens, len);
      cs.max_group_size = std::max(cs.max_group_size, count);
    }
    if (t.num_rows() > 0) {
      sum_len /= static_cast<double>(t.num_rows());
      sum_sq /= static_cast<double>(t.num_rows());
    }
    cs.avg_len_tokens = sum_len;
    cs.avg_sq_len_tokens = sum_sq;
    out.columns.push_back(std::move(cs));
  }
  return out;
}

}  // namespace llmq::table
