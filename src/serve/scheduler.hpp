#pragma once
// Cache-aware online request scheduler with windowed reordering.
//
// The scheduler buffers stream arrivals into bounded windows and decides
// the order in which each window's requests reach the serving engine. A
// window is dispatched when either bound trips:
//
//   * row bound   — `window_rows` arrivals are buffered (0 = unbounded);
//   * wait bound  — the oldest buffered arrival has waited
//                   `max_wait_seconds` (0 = no deadline).
//
// Per-window ordering policies (the online counterparts of the paper's
// batch arms):
//
//   * Fifo        — arrival order, schema field order (online "Original");
//   * WindowedGgr — GGR field+row reordering over the window, i.e. one
//                   window of core/windowed.hpp run on demand;
//   * TenantGgr   — partition the window by tenant (first-arrival order),
//                   GGR within each partition. Tenant prompts carry
//                   tenant-specific instruction prefixes, so keeping a
//                   tenant's rows contiguous protects that shared prefix
//                   from interleaved eviction.
//
// The scheduler never reorders *across* windows: concatenated window
// emissions preserve the streaming constraint that core/windowed.hpp
// formalizes, which is what makes the online schedule directly comparable
// to offline windowed_ggr (see tests/serve/).

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/ggr.hpp"
#include "obs/trace.hpp"
#include "serve/length_predictor.hpp"
#include "serve/workload.hpp"
#include "table/fd.hpp"
#include "table/table.hpp"

namespace llmq::serve {

enum class Policy { Fifo, WindowedGgr, TenantGgr };

std::string to_string(Policy p);
std::optional<Policy> policy_from_string(const std::string& name);

/// At least one bound must be set: `window_rows == 0` together with
/// `max_wait_seconds <= 0` would never dispatch (the scheduler constructor
/// throws std::invalid_argument for that combination).
struct SchedulerOptions {
  Policy policy = Policy::WindowedGgr;
  std::size_t window_rows = 64;   // dispatch threshold; 0 = unbounded
  double max_wait_seconds = 0.0;  // oldest-arrival deadline; 0 = none
  core::GgrOptions ggr;           // planner options for the GGR policies

  /// Strict-priority emission: partition each window by the arrivals'
  /// effective class at plan time (aged by `aging_seconds`, see
  /// llm::aged_class) and run `policy` within each partition, emitting
  /// Interactive first. Off = classic single-class planning (bit-exact
  /// with the pre-priority scheduler). The engine applies the same
  /// strict-priority rule at admission, so this mainly shortens the
  /// dispatch-to-admission gap for urgent rows inside large windows.
  bool priority_order = false;
  /// Aging horizon for the effective class (0 = no aging). Use the same
  /// value as EngineConfig::priority_aging_seconds so the scheduler and
  /// the engine agree on what "overdue" means.
  double aging_seconds = 0.0;

  /// Shortest-predicted-job-first dispatch: stable-sort each planned
  /// (sub-)batch by the bound LengthPredictor's per-tenant prediction
  /// before the policy runs, so short-predicted requests reach the engine
  /// earlier within their window (and their class partition, when
  /// priority_order is on). Requires set_predictor(); a null or disabled
  /// predictor leaves the order untouched. Note the GGR policies reorder
  /// rows for cache affinity anyway — SPJF dispatch bites hardest under
  /// Fifo, while the engine-side EngineConfig::spjf reorders admission
  /// regardless of the window policy.
  bool spjf = false;
};

/// One dispatched window: arrivals in emission (post-reordering) order and
/// the per-request field order over the backing table's schema.
struct Window {
  std::vector<Arrival> arrivals;                       // emission order
  std::vector<std::vector<std::size_t>> field_orders;  // parallel to arrivals
  double planned_at = 0.0;   // simulated dispatch time
  double solve_seconds = 0.0;  // planner wall-clock spent on this window
};

class OnlineScheduler {
 public:
  /// `t` backs the arrivals' row indices; both `t` and `fds` must outlive
  /// the scheduler.
  OnlineScheduler(const table::Table& t, const table::FdSet& fds,
                  SchedulerOptions options);

  /// Buffer one arrival. Arrivals must be pushed in time order.
  void push(const Arrival& a);

  std::size_t buffered() const { return buffer_.size(); }

  /// Simulated time at which the wait bound next trips; +infinity when the
  /// buffer is empty or no deadline is configured.
  double next_deadline() const;

  /// True when a window is due at simulated time `now`.
  bool ready(double now) const;

  /// Dispatch the next due window (row bound: exactly `window_rows`
  /// arrivals; wait bound: the whole buffer). std::nullopt when not due.
  std::optional<Window> pop_ready(double now);

  /// Dispatch whatever is buffered regardless of bounds (stream drain).
  std::optional<Window> flush(double now);

  const SchedulerOptions& options() const { return opt_; }

  /// Bind an event sink: every dispatched window (pop_ready/flush) emits
  /// a WindowPlan event on the driver's global track. nullptr disables.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Bind the output-length predictor SchedulerOptions::spjf sorts by
  /// (caller-owned, must outlive the scheduler; nullptr disables).
  void set_predictor(const LengthPredictor* p) { predictor_ = p; }

 private:
  Window plan_window(std::vector<Arrival> batch, double now) const;
  /// WindowPlan emission for one dispatched window.
  void trace_window(const Window& w) {
    if (!trace_) return;
    trace_->emit({obs::EventKind::WindowPlan, 0, obs::kGlobalTrack,
                  w.planned_at, window_seq_++, w.arrivals.size(),
                  static_cast<std::uint64_t>(opt_.policy), buffer_.size()});
  }
  /// Run the configured policy over one (sub-)batch, appending its
  /// emission to `w`. With spjf + a live predictor, stable-sorts the
  /// batch by predicted length first (ties keep arrival order).
  void plan_into(Window& w, std::vector<Arrival> batch) const;

  const table::Table& table_;
  const table::FdSet& fds_;
  SchedulerOptions opt_;
  std::deque<Arrival> buffer_;
  obs::TraceSink* trace_ = nullptr;
  const LengthPredictor* predictor_ = nullptr;
  std::uint64_t window_seq_ = 0;
};

}  // namespace llmq::serve
