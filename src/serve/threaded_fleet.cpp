#include "serve/threaded_fleet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

#include "llm/cost_model.hpp"
#include "serve/online_driver.hpp"
#include "serve/scheduler.hpp"

namespace llmq::serve {

ThreadedFleet::ThreadedFleet(const FleetConfig& config,
                             ThreadedFleetOptions options)
    : router_(config.router,
              config.elasticity.enabled
                  ? config.elasticity.ceiling(config.n_replicas)
                  : (config.n_replicas ? config.n_replicas : 1)),
      elastic_(config.elasticity),
      block_size_(config.engine.block_size) {
  if (config.n_replicas == 0)
    throw std::invalid_argument("ThreadedFleet: n_replicas must be positive");
  const std::size_t total = elastic_.enabled
                                ? elastic_.ceiling(config.n_replicas)
                                : config.n_replicas;
  replicas_.reserve(total);
  for (std::size_t r = 0; r < total; ++r)
    replicas_.push_back(std::make_unique<Replica>(config, options));
  counters_.resize(total);
  clock_view_.assign(total, 0.0);
  busy_view_.assign(total, 0);
  outstanding_view_.assign(total, 0);
  active_.assign(total, 0);
  draining_.assign(total, 0);
  for (std::size_t r = 0; r < config.n_replicas; ++r) active_[r] = 1;

  // Thread cap: leave one core for the driver, never exceed one worker
  // per replica. Replica i belongs to worker i % T.
  std::size_t cap = options.max_threads;
  if (cap == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    cap = hc > 1 ? static_cast<std::size_t>(hc) - 1 : 1;
  }
  const std::size_t n_workers = std::min(total, cap);
  workers_.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w)
    workers_.push_back(std::make_unique<Worker>(options.inbox_capacity, total));
  for (std::size_t r = 0; r < total; ++r)
    workers_[r % n_workers]->owned.push_back(replicas_[r].get());
  // Spawn threads only once every Worker is at its final address.
  for (auto& w : workers_)
    w->thread = std::thread(&ThreadedFleet::worker_main, std::ref(*w));
}

ThreadedFleet::~ThreadedFleet() { shutdown(); }

void ThreadedFleet::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& w : workers_) {
    WorkerMsg stop;
    stop.kind = WorkerMsg::Kind::Stop;
    w->inbox.push(std::move(stop));
  }
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

void ThreadedFleet::set_trace(obs::OrderedTraceMerger* merger) {
  if (!merger || !merger->enabled()) return;
  merger_ = merger;
  // Workers are parked on empty inboxes and have not touched their
  // sessions yet; the first inbox push publishes these writes to them.
  for (std::size_t r = 0; r < replicas_.size(); ++r)
    replicas_[r]->session.set_trace(&replicas_[r]->local_trace,
                                    static_cast<std::uint32_t>(r));
}

void ThreadedFleet::worker_main(Worker& w) {
  WorkerMsg m;
  while (w.inbox.pop(m)) {
    if (m.kind == WorkerMsg::Kind::Stop) return;
    Replica& r = *m.rep;  // a slot this worker owns
    switch (m.kind) {
      case WorkerMsg::Kind::Stop:
        return;  // handled above; keeps -Wswitch exhaustive
      case WorkerMsg::Kind::Submit: {
        StepRec rec;
        rec.is_submit = true;
        rec.id = m.req.id;
        rec.trace_begin = r.local_trace.size();
        // Mirror of ReplicaFleet::dispatch admission: an idle replica is
        // parked at its last activity; bring it to the dispatch instant
        // so admission cannot happen in the past.
        if (!r.session.has_work()) r.session.advance_to(m.time);
        r.session.submit(std::move(m.req));
        rec.trace_end = r.local_trace.size();
        r.recs.push_back(std::move(rec));
        break;
      }
      case WorkerMsg::Kind::Run: {
        // Step until the session clock first reaches the epoch limit —
        // exactly the per-replica stepping the sequential argmin-clock
        // rule performs before the frontier crosses that limit.
        while (r.session.has_work() && r.session.now() < m.time) {
          StepRec rec;
          rec.pre_clock = r.session.now();
          rec.trace_begin = r.local_trace.size();
          llm::EngineSession::StepEvents ev = r.session.step();
          rec.trace_end = r.local_trace.size();
          rec.completed = std::move(ev.completed);
          r.recs.push_back(std::move(rec));
        }
        EpochReport rep;
        rep.replica = m.replica;
        rep.recs = std::move(r.recs);
        r.recs = std::vector<StepRec>();
        rep.clock = r.session.now();
        rep.has_work = r.session.has_work();
        rep.outstanding = r.session.outstanding_prompt_tokens();
        w.outbox.push(std::move(rep));
        break;
      }
    }
  }
}

std::size_t ThreadedFleet::active_replicas() const {
  std::size_t n = 0;
  for (char a : active_) n += a ? 1u : 0u;
  return n;
}

void ThreadedFleet::complete_migrations(double now) {
  // Driver-thread mirror of ReplicaFleet::complete_migrations. Dispatch
  // runs in barrier context — workers only enqueue submits between
  // barriers, never touch their caches — and the caches are striped, so
  // these cache calls race with nothing.
  for (std::size_t i = 0; i < pending_.size();) {
    PendingMigration& m = pending_[i];
    if (m.land_time > now) {
      ++i;
      continue;
    }
    cache::PrefixCache& dst = replicas_[m.recipient]->cache;
    for (const tokenizer::TokenSeq& p : m.batch.prefixes) dst.admit_migrated(p);
    if (merger_)
      merger_->emit({obs::EventKind::PrefixMigrate, 0, obs::kGlobalTrack,
                     now, 0, m.batch.blocks, m.donor, m.recipient});
    replicas_[m.donor]->cache.end_migration(m.batch);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

void ThreadedFleet::maybe_scale(double now) {
  // Mirror of ReplicaFleet::maybe_scale over the driver-side session
  // mirrors (exact at dispatch points), so both runtimes take the same
  // decision at the same request — the bit-identity contract.
  complete_migrations(now);
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (!draining_[r] || busy_view_[r]) continue;
    bool migrating = false;
    for (const PendingMigration& m : pending_)
      migrating |= (m.donor == r || m.recipient == r);
    if (migrating) continue;
    draining_[r] = 0;
    active_[r] = 0;
    if (merger_)
      merger_->emit({obs::EventKind::ReplicaDrain, 0, obs::kGlobalTrack, now,
                     0, active_replicas(), 0, 0});
  }
  if (now - last_scale_ < elastic_.cooldown_seconds) return;
  std::size_t serving = 0, outstanding = 0;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (!active_[r] || draining_[r]) continue;
    ++serving;
    outstanding += outstanding_view_[r];
  }
  if (serving == 0) return;
  const double mean =
      static_cast<double>(outstanding) / static_cast<double>(serving);
  if (elastic_.high_watermark_tokens > 0 &&
      mean > static_cast<double>(elastic_.high_watermark_tokens)) {
    std::size_t spawn = replicas_.size();
    for (std::size_t r = 0; r < replicas_.size(); ++r)
      if (!active_[r]) {
        spawn = r;
        break;
      }
    if (spawn == replicas_.size()) return;  // at the ceiling
    active_[spawn] = 1;
    last_scale_ = now;
    bool warmed = false;
    if (elastic_.migrate_max_blocks > 0) {
      std::size_t donor = replicas_.size(), donor_out = 0;
      for (std::size_t r = 0; r < replicas_.size(); ++r) {
        if (!active_[r] || draining_[r] || r == spawn) continue;
        const std::size_t o = outstanding_view_[r];
        if (donor == replicas_.size() || o > donor_out) {
          donor = r;
          donor_out = o;
        }
      }
      if (donor < replicas_.size()) {
        cache::PrefixCache::MigrationBatch batch =
            replicas_[donor]->cache.begin_migration(
                elastic_.migrate_max_blocks);
        if (batch.blocks > 0) {
          const double land =
              now + replicas_[donor]->engine.cost_model().promote_seconds(
                        batch.blocks, 0, block_size_);
          warmed = true;
          pending_.push_back({donor, spawn, std::move(batch), land});
        } else {
          replicas_[donor]->cache.end_migration(batch);
        }
      }
    }
    if (merger_)
      merger_->emit({obs::EventKind::ReplicaSpawn, 0, obs::kGlobalTrack, now,
                     0, active_replicas(), warmed ? 1u : 0u, 0});
    return;
  }
  if (elastic_.low_watermark_tokens > 0 && serving > elastic_.min_replicas &&
      mean < static_cast<double>(elastic_.low_watermark_tokens)) {
    for (std::size_t r = replicas_.size(); r-- > 0;) {
      if (active_[r] && !draining_[r]) {
        draining_[r] = 1;
        last_scale_ = now;
        break;
      }
    }
  }
}

std::size_t ThreadedFleet::dispatch(llm::Request req, std::uint32_t tenant,
                                    double now) {
  if (elastic_.enabled) maybe_scale(now);
  const std::size_t n_rep = replicas_.size();
  views_.resize(n_rep);
  for (std::size_t r = 0; r < n_rep; ++r) {
    views_[r].cache = &replicas_[r]->cache;
    // The mirror equals session.outstanding_prompt_tokens() at sequential
    // dispatch time: barrier value plus this barrier's earlier submits.
    views_[r].outstanding_prompt_tokens = outstanding_view_[r];
    views_[r].draining = !active_[r] || draining_[r] != 0;
  }
  const std::size_t target = router_.route(req.prompt, tenant, views_);
  if (merger_) {
    merger_->emit({obs::EventKind::RouteDecision,
                   static_cast<std::uint8_t>(req.priority), obs::kGlobalTrack,
                   now, req.id, target, views_[target].cache->peek(req.prompt),
                   views_[target].outstanding_prompt_tokens});
    // The matching Enqueue is emitted by the worker when it processes the
    // Submit; reserve its slot here so the merged stream interleaves
    // RouteDecision/Enqueue exactly like the sequential one.
    merger_->placeholder(req.id);
  }
  // advance_to mirror for the clock view (the worker does the real one).
  if (!busy_view_[target])
    clock_view_[target] = std::max(clock_view_[target], now);
  busy_view_[target] = 1;
  counters_[target].routed_prompt_tokens += req.prompt.size();
  ++counters_[target].requests;
  outstanding_view_[target] += req.prompt.size();

  WorkerMsg msg;
  msg.kind = WorkerMsg::Kind::Submit;
  msg.rep = replicas_[target].get();
  msg.replica = target;
  msg.req = std::move(req);
  msg.time = now;
  owner(target).inbox.push(std::move(msg));

  // Outstanding-load imbalance over the active set, sampled after every
  // routing decision — post-submit values, as in ReplicaFleet::dispatch.
  std::size_t max_out = 0, sum_out = 0, n_act = 0;
  for (std::size_t r = 0; r < n_rep; ++r) {
    if (!active_[r]) continue;
    const std::size_t o = outstanding_view_[r];
    max_out = std::max(max_out, o);
    sum_out += o;
    ++n_act;
  }
  const double mean_out =
      static_cast<double>(sum_out) / static_cast<double>(n_act);
  imbalance_sum_ += static_cast<double>(max_out) / mean_out;
  ++imbalance_samples_;
  return target;
}

bool ThreadedFleet::any_work() const {
  for (char b : busy_view_)
    if (b) return true;
  return false;
}

double ThreadedFleet::frontier(double now) const {
  const std::size_t n_rep = replicas_.size();
  std::size_t best = n_rep;
  for (std::size_t r = 0; r < n_rep; ++r) {
    if (!busy_view_[r]) continue;
    if (best == n_rep || clock_view_[r] < clock_view_[best]) best = r;
  }
  if (best < n_rep) return std::max(now, clock_view_[best]);
  for (std::size_t r = 0; r < n_rep; ++r) now = std::max(now, clock_view_[r]);
  return now;
}

std::vector<llm::RequestResult> ThreadedFleet::run_epoch(double t_limit) {
  const std::size_t n_rep = replicas_.size();
  for (std::size_t r = 0; r < n_rep; ++r) {
    WorkerMsg run;
    run.kind = WorkerMsg::Kind::Run;
    run.rep = replicas_[r].get();
    run.replica = r;
    run.time = t_limit;
    owner(r).inbox.push(std::move(run));
  }
  // The barrier: one report per replica slot, collected worker by worker
  // (reports carry their replica tag, so collection order is free). After
  // its last report a worker is parked on an empty inbox, so the driver
  // may touch its sessions, caches, and trace buffers until the next
  // message is pushed.
  std::vector<EpochReport> reports(n_rep);
  for (auto& w : workers_) {
    for (std::size_t k = 0; k < w->owned.size(); ++k) {
      EpochReport rep;
      if (!w->outbox.pop(rep))
        throw std::logic_error("ThreadedFleet: worker exited mid-epoch");
      reports[rep.replica] = std::move(rep);
    }
  }

  // 1. Fill the Enqueue placeholders reserved at dispatch (keyed by
  // request id — slot order was fixed then, so fill order is free).
  if (merger_) {
    for (std::size_t r = 0; r < n_rep; ++r) {
      const auto& events = replicas_[r]->local_trace.events();
      for (const StepRec& rec : reports[r].recs) {
        if (!rec.is_submit) continue;
        merger_->fill(rec.id, events.data() + rec.trace_begin,
                      events.data() + rec.trace_end);
      }
    }
  }

  // 2. Merge step records into oracle order: (pre-step clock, replica
  // index, per-replica chronological order). stable_sort on the first two
  // keys preserves the third — each replica's records are appended in
  // execution order.
  std::vector<std::pair<double, std::pair<std::size_t, std::size_t>>> order;
  for (std::size_t r = 0; r < n_rep; ++r)
    for (std::size_t i = 0; i < reports[r].recs.size(); ++i)
      if (!reports[r].recs[i].is_submit)
        order.push_back({reports[r].recs[i].pre_clock, {r, i}});
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first < b.first;
                     return a.second.first < b.second.first;
                   });

  std::vector<llm::RequestResult> completed;
  for (const auto& [clock, ri] : order) {
    (void)clock;
    StepRec& rec = reports[ri.first].recs[ri.second];
    if (merger_) {
      const auto& events = replicas_[ri.first]->local_trace.events();
      merger_->append(events.data() + rec.trace_begin,
                      events.data() + rec.trace_end);
    }
    for (llm::RequestResult& res : rec.completed)
      completed.push_back(std::move(res));
  }

  // 3. Refresh the driver-side mirrors and recycle the trace buffers
  // (their spans are consumed; clearing before the next dispatch keeps
  // worker-side indices consistent with what the driver will read).
  for (std::size_t r = 0; r < n_rep; ++r) {
    clock_view_[r] = reports[r].clock;
    busy_view_[r] = reports[r].has_work ? 1 : 0;
    outstanding_view_[r] = reports[r].outstanding;
    replicas_[r]->local_trace.clear();
  }
  return completed;
}

void ThreadedFleet::sample_gauges(obs::TimeSeries& ts, double now) const {
  for (std::size_t r = 0; r < replicas_.size(); ++r)
    ts.append(now, static_cast<std::uint32_t>(r),
              replicas_[r]->session.gauges());
}

std::vector<ReplicaMetrics> ThreadedFleet::replica_metrics() const {
  std::vector<ReplicaMetrics> out = counters_;
  for (std::size_t r = 0; r < replicas_.size(); ++r)
    out[r].engine = replicas_[r]->session.metrics();
  return out;
}

double ThreadedFleet::load_imbalance() const {
  return imbalance_samples_
             ? imbalance_sum_ / static_cast<double>(imbalance_samples_)
             : 1.0;
}

OnlineRunResult run_online_threaded(const table::Table& t,
                                    const table::FdSet& fds,
                                    const std::vector<Arrival>& arrivals,
                                    const OnlineConfig& config,
                                    ThreadedFleetOptions options) {
  if (config.n_replicas == 0)
    throw std::invalid_argument(
        "run_online_threaded: n_replicas must be positive");
  const std::size_t n_rep = config.n_replicas;

  OnlineRunResult out;
  out.replicas.resize(n_rep);
  out.per_class = summarize_by_class({}, config.ttft_slo_seconds);
  if (arrivals.empty()) return out;

  detail::validate_sessions(config, arrivals);
  auto index_of = detail::index_arrivals(t, arrivals);

  OnlineScheduler scheduler(t, fds, config.scheduler);
  ThreadedFleet fleet(config.fleet(), options);
  obs::OrderedTraceMerger merger(config.trace.sink);
  if (config.trace.sink) {
    fleet.set_trace(&merger);
    scheduler.set_trace(&merger);
  }
  obs::SampleClock sampler(config.trace.sampling() ? config.trace.timeseries
                                                   : nullptr,
                           config.trace.sample_interval_seconds);
  const llm::TaskModel task_model(config.model_profile);
  detail::EncoderMap encoders(config.prompt);
  LengthPredictor predictor(config.predictor);
  scheduler.set_predictor(&predictor);
  detail::SessionTracker tracker(config.sessions);
  detail::ArrivalFeed feed(arrivals);
  std::vector<Arrival> spawned;  // feedback arrivals, in spawn order

  std::unordered_map<std::uint64_t, detail::InFlight> inflight;
  std::vector<std::size_t> emitted_rows;
  std::vector<std::vector<std::size_t>> emitted_fields;
  emitted_rows.reserve(arrivals.size());
  emitted_fields.reserve(arrivals.size());

  double now = 0.0;
  const std::size_t n = arrivals.size();

  const auto dispatch = [&](const Window& w) {
    ++out.windows;
    out.solve_seconds += w.solve_seconds;
    for (std::size_t i = 0; i < w.arrivals.size(); ++i) {
      const Arrival& a = w.arrivals[i];
      const std::vector<std::size_t>& fo = w.field_orders[i];
      tokenizer::TokenSeq prompt =
          a.turn > 0 ? tracker.make_child_prompt(a, t, fo)
                     : encoders.for_tenant(a.tenant).encode(t, a.row, fo);
      llm::Request req =
          detail::make_request(a, std::move(prompt), task_model, config,
                               &predictor);
      tracker.on_dispatch(a, req.prompt);
      const std::size_t target = fleet.dispatch(std::move(req), a.tenant, now);
      inflight.emplace(a.id, detail::InFlight{a, w.planned_at, target});
      emitted_rows.push_back(index_of.at(a.id));
      emitted_fields.push_back(fo);
    }
  };

  // Completions arrive here in oracle (merged) order at epoch barriers, so
  // predictor observations and feedback-arrival id allocation match the
  // sequential drivers exactly.
  const auto record = [&](const llm::RequestResult& res) {
    const detail::InFlight& f = inflight.at(res.id);
    ServedRequest sr = detail::stitch(res, f);
    detail::count_tenant(out.per_tenant, sr.tenant);
    out.requests.push_back(sr);
    if (predictor.enabled())
      predictor.observe(f.arrival.tenant, res.output_tokens);
    if (auto child = tracker.on_complete(f.arrival, res)) {
      index_of.emplace(child->id, arrivals.size() + spawned.size());
      spawned.push_back(*child);
      feed.push_feedback(*child);
    }
    inflight.erase(res.id);
  };

  const auto feed_due = [&](double t_now) {
    while (!feed.exhausted() && feed.next_time() <= t_now) {
      const Arrival a = feed.pop();
      if (a.turn > 0 && config.trace.sink)
        merger.emit({obs::EventKind::TurnSpawn,
                     static_cast<std::uint8_t>(a.priority), obs::kGlobalTrack,
                     a.time, a.id, a.session, a.turn, a.parent});
      scheduler.push(a);
    }
  };

  // Next virtual time anything observable can happen — the epoch cut.
  // Every source of window due-ness (and the sampling boundary) is
  // represented; extra cuts would be harmless (the barrier replays the
  // same feed/dispatch code the sequential loop runs every iteration), a
  // missing one would break planned_at times. All sources are > `now`
  // at the point of the call: boundaries were advanced past, due windows
  // popped, and occurred arrivals fed.
  const auto next_cut = [&]() {
    double cut = std::numeric_limits<double>::infinity();
    if (sampler.sampling()) cut = std::min(cut, sampler.next_boundary());
    // Wait bound of the currently buffered window (covers later pushes
    // too: the deadline is the *oldest* arrival's, so nothing buffered
    // after it can tighten it).
    cut = std::min(cut, scheduler.next_deadline());
    const SchedulerOptions& sopt = scheduler.options();
    if (tracker.active()) {
      // Session streams: cut at every pending arrival, static or spawned.
      // Coarser than the static lookaheads below but still exact — extra
      // cuts are harmless, and a barrier at each arrival covers both a
      // deadline start and a row-bound fill at that arrival. Turns not in
      // the feed yet (their parent is still running) are handled by the
      // run_epoch cap below, not here.
      cut = std::min(cut, feed.next_time());
      return cut;
    }
    const std::size_t next = feed.next_static();
    if (next < n) {
      // A future arrival entering an empty buffer starts a new deadline.
      if (scheduler.buffered() == 0 && sopt.max_wait_seconds > 0)
        cut = std::min(cut, arrivals[next].time + sopt.max_wait_seconds);
      // The arrival that fills the row bound makes a window due at its
      // own arrival time.
      if (sopt.window_rows > 0) {
        const std::size_t fill_idx =
            next + (sopt.window_rows - scheduler.buffered()) - 1;
        if (fill_idx < n) cut = std::min(cut, arrivals[fill_idx].time);
      }
    }
    return cut;
  };

  // ---- Barrier loop: same event order as the sequential merged loop,
  // with contiguous stepping runs delegated to the workers. ----
  while (!feed.exhausted() || scheduler.buffered() > 0 || fleet.any_work()) {
    // 0. Advance the merged clock to the execution frontier.
    now = fleet.frontier(now);
    if (sampler.due(now)) {
      fleet.sample_gauges(*sampler.series(), now);
      sampler.advance_past(now);
    }
    // 1. Feed arrivals that have occurred (static stream + spawned turns).
    feed_due(now);
    // 2. Dispatch every due window (routing each request).
    while (auto w = scheduler.pop_ready(now)) dispatch(*w);
    // 3. Execute one epoch up to the next observable event. A completion
    // inside the epoch may spawn a follow-up turn that is not in the feed
    // yet (it only materializes at this barrier's record), so the epoch is
    // additionally capped at frontier + the smallest in-flight think-time
    // gap: any such turn arrives strictly after its parent's finish plus
    // that gap, hence strictly after the cap — it becomes a regular
    // next_cut() source before any worker can step past it.
    if (fleet.any_work()) {
      double limit = next_cut();
      if (tracker.active())
        limit = std::min(limit, now + tracker.min_inflight_gap());
      for (const llm::RequestResult& res : fleet.run_epoch(limit)) record(res);
      continue;
    }
    // 4. Everything idle: jump to the next arrival or deadline, or drain.
    double t_next = std::min(scheduler.next_deadline(), feed.next_time());
    if (std::isfinite(t_next)) {
      now = std::max(now, t_next);
    } else if (auto w = scheduler.flush(now)) {
      // Stream over, no deadline pending: drain the partial window.
      dispatch(*w);
    } else {
      break;  // defensive: no arrivals, no buffer, no work
    }
  }

  fleet.shutdown();
  out.replicas = fleet.replica_metrics();
  out.engine = aggregate_replica_engines(out.replicas);
  out.load_imbalance = fleet.load_imbalance();
  merger.finish();
  if (spawned.empty()) {
    detail::finalize_emitted(out, t, arrivals, config, std::move(emitted_rows),
                             std::move(emitted_fields));
  } else {
    std::vector<Arrival> all = arrivals;
    all.insert(all.end(), spawned.begin(), spawned.end());
    detail::finalize_emitted(out, t, all, config, std::move(emitted_rows),
                             std::move(emitted_fields));
  }
  return out;
}

}  // namespace llmq::serve
