#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace llmq::serve {

namespace {

/// Advance `t` past the next arrival of an inhomogeneous Poisson process
/// with the configured piecewise-constant rate: draw a unit-rate
/// exponential and consume integrated intensity segment by segment.
/// Segments are tracked with an integer cycle counter and entered by
/// assignment (t = segment end), never by accumulation — `t += span` stops
/// making progress once span drops below t's ulp near a phase boundary.
double next_arrival_time(const WorkloadOptions& o, double t, util::Rng& rng) {
  double needed = -std::log(1.0 - rng.next_double());  // Exp(1)
  if (o.process == ArrivalProcess::Poisson) return t + needed / o.arrival_rate;

  const double cycle = std::max(1e-9, o.cycle_seconds);
  const double frac = std::clamp(o.burst_fraction, 0.0, 1.0);
  const double on_rate = o.arrival_rate * o.burst_multiplier;
  // Off-phase rate chosen so the cycle mean equals arrival_rate (floored
  // at 0 when burst_fraction * burst_multiplier exceeds 1).
  const double off_rate =
      frac >= 1.0 ? on_rate
                  : std::max(0.0, o.arrival_rate *
                                      (1.0 - frac * o.burst_multiplier) /
                                      (1.0 - frac));
  if (on_rate <= 0.0 && off_rate <= 0.0)
    throw std::invalid_argument("workload: bursty process has zero rate");

  double k = std::floor(t / cycle);  // current cycle index
  for (;;) {
    const double on_end = (k + frac) * cycle;
    const double cycle_end = (k + 1.0) * cycle;
    const bool in_on = t < on_end;
    const double seg_end = in_on ? on_end : cycle_end;
    const double r = in_on ? on_rate : off_rate;
    if (r > 0.0) {
      const double available = (seg_end - t) * r;
      if (available >= needed) return t + needed / r;
      needed -= available;
    }
    t = seg_end;
    if (!in_on) k += 1.0;
  }
}

}  // namespace

std::vector<Arrival> generate_arrivals(std::size_t n_rows,
                                       const WorkloadOptions& options) {
  if (n_rows == 0) return {};
  if (options.arrival_rate <= 0.0)
    throw std::invalid_argument("workload: arrival_rate must be > 0");
  const std::size_t n =
      options.n_requests ? options.n_requests : n_rows;

  util::Rng rng(options.seed);
  util::Rng tenant_rng = rng.fork(1);
  util::Rng time_rng = rng.fork(2);

  std::vector<std::size_t> visit(n_rows);
  std::iota(visit.begin(), visit.end(), 0);
  if (options.shuffle_rows) rng.shuffle(visit);

  const std::size_t n_tenants = std::max<std::size_t>(1, options.n_tenants);
  const util::Zipf zipf(n_tenants, options.tenant_skew);

  std::vector<Arrival> out;
  out.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t = next_arrival_time(options, t, time_rng);
    Arrival a;
    a.id = i;
    a.time = t;
    a.row = visit[i % n_rows];
    a.tenant = n_tenants == 1
                   ? 0
                   : static_cast<std::uint32_t>(zipf.sample(tenant_rng));
    if (!options.tenant_classes.empty())
      a.priority = options.tenant_classes[a.tenant %
                                          options.tenant_classes.size()];
    out.push_back(a);
  }
  return out;
}

SessionWorkload generate_sessions(std::size_t n_rows,
                                  const WorkloadOptions& options,
                                  const SessionOptions& sessions) {
  if (sessions.turns == 0)
    throw std::invalid_argument("sessions: turns must be >= 1");
  if (sessions.mean_gap_seconds <= 0.0)
    throw std::invalid_argument("sessions: mean_gap_seconds must be > 0");

  SessionWorkload out;
  out.kind = sessions.kind;
  out.roots = generate_arrivals(n_rows, options);
  for (Arrival& a : out.roots) {
    a.session = a.id;  // roots get ids 0..n-1 in time order
    a.turn = 0;
    a.parent = kNoSession;
  }

  // Follow-up rows/gaps come from fork(3) of a fresh seed rng: forks 1/2
  // and the shuffle consumption inside generate_arrivals never see it,
  // so the roots stay bit-identical to the one-shot stream.
  util::Rng base(options.seed);
  util::Rng follow_rng = base.fork(3);
  out.plans.resize(out.roots.size());
  for (std::size_t s = 0; s < out.roots.size(); ++s) {
    SessionPlan& plan = out.plans[s];
    plan.follow_ups.reserve(sessions.turns - 1);
    for (std::size_t k = 1; k < sessions.turns; ++k) {
      FollowUpPlan fo;
      fo.row = sessions.kind == SessionKind::Agent
                   ? out.roots[s].row
                   : follow_rng.next_below(n_rows);
      fo.gap_seconds =
          std::max(1e-3, -sessions.mean_gap_seconds *
                             std::log(1.0 - follow_rng.next_double()));
      plan.follow_ups.push_back(fo);
    }
  }
  return out;
}

tokenizer::TokenSeq synth_output_tokens(std::uint64_t session,
                                        std::uint32_t turn,
                                        std::size_t len) {
  tokenizer::TokenSeq out;
  out.reserve(len);
  const std::uint64_t base =
      util::hash_combine(util::hash64(session + 1),
                         util::hash64(static_cast<std::uint64_t>(turn)));
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint64_t h = util::hash_combine(base, util::hash64(i));
    out.push_back(static_cast<tokenizer::TokenId>(h));
  }
  return out;
}

std::string session_segment_label(SessionKind kind, std::uint32_t turn) {
  return kind == SessionKind::Agent
             ? "\n[tool result " + std::to_string(turn) + "]\n"
             : "\n[user turn " + std::to_string(turn) + "]\n";
}

std::vector<llm::PriorityClass> classes_for_tenants(
    const std::vector<std::uint32_t>& tenants,
    const std::vector<llm::PriorityClass>& tenant_classes) {
  std::vector<llm::PriorityClass> out;
  if (tenant_classes.empty()) return out;
  out.reserve(tenants.size());
  for (const std::uint32_t t : tenants)
    out.push_back(tenant_classes[t % tenant_classes.size()]);
  return out;
}

std::vector<Arrival> arrivals_from_trace(
    const std::vector<double>& times, const std::vector<std::size_t>& rows,
    const std::vector<std::uint32_t>& tenants,
    const std::vector<llm::PriorityClass>& classes) {
  if (times.size() != rows.size())
    throw std::invalid_argument("trace: times/rows length mismatch");
  if (!tenants.empty() && tenants.size() != times.size())
    throw std::invalid_argument("trace: tenants length mismatch");
  if (!classes.empty() && classes.size() != times.size())
    throw std::invalid_argument(
        "trace: classes must have one entry per arrival (expand a "
        "tenant mapping with classes_for_tenants)");
  std::vector<Arrival> out;
  out.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (i > 0 && times[i] < times[i - 1])
      throw std::invalid_argument("trace: timestamps must be non-decreasing");
    Arrival a;
    a.id = i;
    a.time = times[i];
    a.row = rows[i];
    a.tenant = tenants.empty() ? 0 : tenants[i];
    if (!classes.empty()) a.priority = classes[i];
    out.push_back(a);
  }
  return out;
}

}  // namespace llmq::serve
