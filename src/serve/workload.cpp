#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace llmq::serve {

namespace {

/// Advance `t` past the next arrival of an inhomogeneous Poisson process
/// with the configured piecewise-constant rate: draw a unit-rate
/// exponential and consume integrated intensity segment by segment.
/// Segments are tracked with an integer cycle counter and entered by
/// assignment (t = segment end), never by accumulation — `t += span` stops
/// making progress once span drops below t's ulp near a phase boundary.
double next_arrival_time(const WorkloadOptions& o, double t, util::Rng& rng) {
  double needed = -std::log(1.0 - rng.next_double());  // Exp(1)
  if (o.process == ArrivalProcess::Poisson) return t + needed / o.arrival_rate;

  const double cycle = std::max(1e-9, o.cycle_seconds);
  const double frac = std::clamp(o.burst_fraction, 0.0, 1.0);
  const double on_rate = o.arrival_rate * o.burst_multiplier;
  // Off-phase rate chosen so the cycle mean equals arrival_rate (floored
  // at 0 when burst_fraction * burst_multiplier exceeds 1).
  const double off_rate =
      frac >= 1.0 ? on_rate
                  : std::max(0.0, o.arrival_rate *
                                      (1.0 - frac * o.burst_multiplier) /
                                      (1.0 - frac));
  if (on_rate <= 0.0 && off_rate <= 0.0)
    throw std::invalid_argument("workload: bursty process has zero rate");

  double k = std::floor(t / cycle);  // current cycle index
  for (;;) {
    const double on_end = (k + frac) * cycle;
    const double cycle_end = (k + 1.0) * cycle;
    const bool in_on = t < on_end;
    const double seg_end = in_on ? on_end : cycle_end;
    const double r = in_on ? on_rate : off_rate;
    if (r > 0.0) {
      const double available = (seg_end - t) * r;
      if (available >= needed) return t + needed / r;
      needed -= available;
    }
    t = seg_end;
    if (!in_on) k += 1.0;
  }
}

}  // namespace

std::vector<Arrival> generate_arrivals(std::size_t n_rows,
                                       const WorkloadOptions& options) {
  if (n_rows == 0) return {};
  if (options.arrival_rate <= 0.0)
    throw std::invalid_argument("workload: arrival_rate must be > 0");
  const std::size_t n =
      options.n_requests ? options.n_requests : n_rows;

  util::Rng rng(options.seed);
  util::Rng tenant_rng = rng.fork(1);
  util::Rng time_rng = rng.fork(2);

  std::vector<std::size_t> visit(n_rows);
  std::iota(visit.begin(), visit.end(), 0);
  if (options.shuffle_rows) rng.shuffle(visit);

  const std::size_t n_tenants = std::max<std::size_t>(1, options.n_tenants);
  const util::Zipf zipf(n_tenants, options.tenant_skew);

  std::vector<Arrival> out;
  out.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t = next_arrival_time(options, t, time_rng);
    Arrival a;
    a.id = i;
    a.time = t;
    a.row = visit[i % n_rows];
    a.tenant = n_tenants == 1
                   ? 0
                   : static_cast<std::uint32_t>(zipf.sample(tenant_rng));
    if (!options.tenant_classes.empty())
      a.priority = options.tenant_classes[a.tenant %
                                          options.tenant_classes.size()];
    out.push_back(a);
  }
  return out;
}

std::vector<llm::PriorityClass> classes_for_tenants(
    const std::vector<std::uint32_t>& tenants,
    const std::vector<llm::PriorityClass>& tenant_classes) {
  std::vector<llm::PriorityClass> out;
  if (tenant_classes.empty()) return out;
  out.reserve(tenants.size());
  for (const std::uint32_t t : tenants)
    out.push_back(tenant_classes[t % tenant_classes.size()]);
  return out;
}

std::vector<Arrival> arrivals_from_trace(
    const std::vector<double>& times, const std::vector<std::size_t>& rows,
    const std::vector<std::uint32_t>& tenants,
    const std::vector<llm::PriorityClass>& classes) {
  if (times.size() != rows.size())
    throw std::invalid_argument("trace: times/rows length mismatch");
  if (!tenants.empty() && tenants.size() != times.size())
    throw std::invalid_argument("trace: tenants length mismatch");
  if (!classes.empty() && classes.size() != times.size())
    throw std::invalid_argument(
        "trace: classes must have one entry per arrival (expand a "
        "tenant mapping with classes_for_tenants)");
  std::vector<Arrival> out;
  out.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (i > 0 && times[i] < times[i - 1])
      throw std::invalid_argument("trace: timestamps must be non-decreasing");
    Arrival a;
    a.id = i;
    a.time = times[i];
    a.row = rows[i];
    a.tenant = tenants.empty() ? 0 : tenants[i];
    if (!classes.empty()) a.priority = classes[i];
    out.push_back(a);
  }
  return out;
}

}  // namespace llmq::serve
