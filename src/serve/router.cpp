#include "serve/router.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace llmq::serve {

std::string to_string(RouterPolicy p) {
  switch (p) {
    case RouterPolicy::RoundRobin: return "RoundRobin";
    case RouterPolicy::LeastLoaded: return "LeastLoaded";
    case RouterPolicy::TenantHash: return "TenantHash";
    case RouterPolicy::PrefixAffinity: return "PrefixAffinity";
  }
  return "?";
}

std::optional<RouterPolicy> router_policy_from_string(const std::string& name) {
  if (name == "round-robin" || name == "rr") return RouterPolicy::RoundRobin;
  if (name == "least-loaded" || name == "ll") return RouterPolicy::LeastLoaded;
  if (name == "tenant-hash" || name == "tenant")
    return RouterPolicy::TenantHash;
  if (name == "prefix-affinity" || name == "affinity")
    return RouterPolicy::PrefixAffinity;
  return std::nullopt;
}

namespace {

/// Tenant ids are small sequential integers, so a plain modulo would map
/// tenants 0..n-1 to replicas 0..n-1 in lockstep — fine until tenant load
/// is skewed (it is: Zipf), at which point the hot tenants all sit on the
/// low replicas. Mix through the splitmix64 finalizer first.
std::uint64_t mix_tenant(std::uint32_t tenant) { return util::hash64(tenant); }

/// PrefixAffinity abandons locality for balance when the preferred
/// replica's outstanding prompt tokens exceed this multiple of the
/// least-loaded replica's (plus the routed prompt, so near-idle fleets
/// don't spill on noise).
constexpr std::size_t kSpillFactor = 2;

/// Tier-weighted affinity score: a GPU-resident match is worth promoting
/// traffic toward more than a host match (which pays a PCIe transfer on
/// hit) more than a disk match. On a flat cache every matched token is
/// GPU-resident, so the score is 4x the classic longest-prefix probe — a
/// strictly monotone transform that preserves every comparison AND every
/// tie, keeping flat routing bit-identical.
std::size_t tier_score(const Router::ReplicaView& v,
                       std::span<const cache::TokenId> prompt) {
  if (!v.cache) return 0;
  const cache::TierPeek p = v.cache->peek_tiers(prompt);
  return 4 * p.gpu_tokens + 2 * p.host_tokens + p.disk_tokens;
}

}  // namespace

Router::Router(RouterPolicy policy, std::size_t n_replicas)
    : policy_(policy), n_(n_replicas) {
  if (n_ == 0)
    throw std::invalid_argument("Router: n_replicas must be positive");
}

std::size_t Router::route(std::span<const cache::TokenId> prompt,
                          std::uint32_t tenant,
                          const std::vector<ReplicaView>& views) {
  if (views.size() != n_)
    throw std::invalid_argument("Router::route: views.size() != n_replicas");
  if (n_ == 1) return 0;

  switch (policy_) {
    case RouterPolicy::RoundRobin: {
      // Advance past draining replicas; with none draining this is the
      // classic take-and-increment.
      std::size_t r = rr_next_;
      for (std::size_t tries = 0; tries + 1 < n_ && views[r].draining;
           ++tries)
        r = (r + 1) % n_;
      rr_next_ = (r + 1) % n_;
      return r;
    }
    case RouterPolicy::LeastLoaded: {
      std::size_t best = n_;
      for (std::size_t r = 0; r < n_; ++r) {
        if (views[r].draining) continue;
        if (best == n_ || views[r].outstanding_prompt_tokens <
                              views[best].outstanding_prompt_tokens)
          best = r;
      }
      return best == n_ ? 0 : best;
    }
    case RouterPolicy::TenantHash: {
      // Linear-probe past draining replicas from the hashed home slot.
      std::size_t r = static_cast<std::size_t>(mix_tenant(tenant) % n_);
      for (std::size_t tries = 0; tries + 1 < n_ && views[r].draining;
           ++tries)
        r = (r + 1) % n_;
      return r;
    }
    case RouterPolicy::PrefixAffinity: {
      // Best tier-weighted cached prefix wins (GPU > host > disk; see
      // tier_score); among equals, least outstanding load; among those,
      // the lowest index. A replica without a probe handle counts as a
      // zero match; draining replicas are never candidates.
      std::size_t best = n_;
      std::size_t best_match = 0;
      std::size_t least = n_;
      for (std::size_t r = 0; r < n_; ++r) {
        if (views[r].draining) continue;
        const std::size_t match = tier_score(views[r], prompt);
        if (best == n_ || match > best_match ||
            (match == best_match &&
             views[r].outstanding_prompt_tokens <
                 views[best].outstanding_prompt_tokens)) {
          best = r;
          best_match = match;
        }
        if (least == n_ || views[r].outstanding_prompt_tokens <
                               views[least].outstanding_prompt_tokens)
          least = r;
      }
      if (best == n_) return 0;  // everything draining (callers prevent)
      // Nothing cached anywhere: a load tie-break would deal a cold
      // same-prefix burst (a whole window dispatches before any prefill
      // admits blocks) across every replica, duplicating the prefix
      // fleet-wide. Fall back to the tenant hash so cold bursts stay
      // together and the first prefill creates affinity on one replica.
      std::size_t preferred = best;
      if (best_match == 0) {
        preferred = static_cast<std::size_t>(mix_tenant(tenant) % n_);
        for (std::size_t tries = 0;
             tries + 1 < n_ && views[preferred].draining; ++tries)
          preferred = (preferred + 1) % n_;
      }
      // Load guard (the usual cache-aware-router spill rule): pure
      // affinity turns into a hotspot amplifier once one prefix's traffic
      // exceeds a replica, so when the preferred replica's backlog tops
      // kSpillFactor x the fleet minimum (+ this prompt), take the
      // locality loss and spill to the least-loaded replica instead.
      if (views[preferred].outstanding_prompt_tokens >
          kSpillFactor *
              (views[least].outstanding_prompt_tokens + prompt.size()))
        return least;
      return preferred;
    }
  }
  return 0;
}

}  // namespace llmq::serve
