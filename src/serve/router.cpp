#include "serve/router.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace llmq::serve {

std::string to_string(RouterPolicy p) {
  switch (p) {
    case RouterPolicy::RoundRobin: return "RoundRobin";
    case RouterPolicy::LeastLoaded: return "LeastLoaded";
    case RouterPolicy::TenantHash: return "TenantHash";
    case RouterPolicy::PrefixAffinity: return "PrefixAffinity";
  }
  return "?";
}

std::optional<RouterPolicy> router_policy_from_string(const std::string& name) {
  if (name == "round-robin" || name == "rr") return RouterPolicy::RoundRobin;
  if (name == "least-loaded" || name == "ll") return RouterPolicy::LeastLoaded;
  if (name == "tenant-hash" || name == "tenant")
    return RouterPolicy::TenantHash;
  if (name == "prefix-affinity" || name == "affinity")
    return RouterPolicy::PrefixAffinity;
  return std::nullopt;
}

namespace {

/// Tenant ids are small sequential integers, so a plain modulo would map
/// tenants 0..n-1 to replicas 0..n-1 in lockstep — fine until tenant load
/// is skewed (it is: Zipf), at which point the hot tenants all sit on the
/// low replicas. Mix through the splitmix64 finalizer first.
std::uint64_t mix_tenant(std::uint32_t tenant) { return util::hash64(tenant); }

/// PrefixAffinity abandons locality for balance when the preferred
/// replica's outstanding prompt tokens exceed this multiple of the
/// least-loaded replica's (plus the routed prompt, so near-idle fleets
/// don't spill on noise).
constexpr std::size_t kSpillFactor = 2;

}  // namespace

Router::Router(RouterPolicy policy, std::size_t n_replicas)
    : policy_(policy), n_(n_replicas) {
  if (n_ == 0)
    throw std::invalid_argument("Router: n_replicas must be positive");
}

std::size_t Router::route(std::span<const cache::TokenId> prompt,
                          std::uint32_t tenant,
                          const std::vector<ReplicaView>& views) {
  if (views.size() != n_)
    throw std::invalid_argument("Router::route: views.size() != n_replicas");
  if (n_ == 1) return 0;

  switch (policy_) {
    case RouterPolicy::RoundRobin: {
      const std::size_t r = rr_next_;
      rr_next_ = (rr_next_ + 1) % n_;
      return r;
    }
    case RouterPolicy::LeastLoaded: {
      std::size_t best = 0;
      for (std::size_t r = 1; r < n_; ++r)
        if (views[r].outstanding_prompt_tokens <
            views[best].outstanding_prompt_tokens)
          best = r;
      return best;
    }
    case RouterPolicy::TenantHash:
      return static_cast<std::size_t>(mix_tenant(tenant) % n_);
    case RouterPolicy::PrefixAffinity: {
      // Longest cached prefix wins; among equals, least outstanding load;
      // among those, the lowest index. A replica without a probe handle
      // counts as a zero-length match.
      std::size_t best = 0;
      std::size_t best_match =
          views[0].cache ? views[0].cache->peek(prompt) : 0;
      std::size_t least = 0;
      for (std::size_t r = 1; r < n_; ++r) {
        const std::size_t match =
            views[r].cache ? views[r].cache->peek(prompt) : 0;
        if (match > best_match ||
            (match == best_match &&
             views[r].outstanding_prompt_tokens <
                 views[best].outstanding_prompt_tokens)) {
          best = r;
          best_match = match;
        }
        if (views[r].outstanding_prompt_tokens <
            views[least].outstanding_prompt_tokens)
          least = r;
      }
      // Nothing cached anywhere: a load tie-break would deal a cold
      // same-prefix burst (a whole window dispatches before any prefill
      // admits blocks) across every replica, duplicating the prefix
      // fleet-wide. Fall back to the tenant hash so cold bursts stay
      // together and the first prefill creates affinity on one replica.
      const std::size_t preferred =
          best_match > 0 ? best
                         : static_cast<std::size_t>(mix_tenant(tenant) % n_);
      // Load guard (the usual cache-aware-router spill rule): pure
      // affinity turns into a hotspot amplifier once one prefix's traffic
      // exceeds a replica, so when the preferred replica's backlog tops
      // kSpillFactor x the fleet minimum (+ this prompt), take the
      // locality loss and spill to the least-loaded replica instead.
      if (views[preferred].outstanding_prompt_tokens >
          kSpillFactor *
              (views[least].outstanding_prompt_tokens + prompt.size()))
        return least;
      return preferred;
    }
  }
  return 0;
}

}  // namespace llmq::serve
