#pragma once
// Timestamped request-arrival generation for the online serving subsystem.
//
// The paper's batch setting knows every request up front; a serving
// endpoint sees a *stream*. The workload generator turns a benchmark table
// into such a stream: each arrival names a table row, a tenant, and a
// simulated arrival time. Supported processes:
//
//   * Poisson  — homogeneous arrivals at `arrival_rate` req/s, the
//                standard open-loop serving model;
//   * Bursty   — on/off modulated Poisson: within each cycle a burst
//                phase of `burst_fraction` runs at `burst_multiplier`×
//                the base rate and the off phase is slowed so the mean
//                rate stays `arrival_rate` (diurnal / thundering-herd
//                traffic in miniature);
//   * traces   — arrivals_from_trace() wraps explicit timestamps so
//                recorded workloads can be replayed.
//
// Multi-tenancy: tenants are drawn per-arrival from a Zipf distribution
// over `n_tenants` ranks (util/zipf) — a few hot tenants dominate, the
// realistic skew for shared serving endpoints. Everything is a pure
// function of the seed.

#include <cstdint>
#include <string>
#include <vector>

#include "llm/request.hpp"
#include "tokenizer/tokenizer.hpp"

namespace llmq::serve {

enum class ArrivalProcess { Poisson, Bursty };

/// Sentinel for Arrival::session / Arrival::parent on one-shot streams.
inline constexpr std::uint64_t kNoSession =
    static_cast<std::uint64_t>(-1);

struct WorkloadOptions {
  ArrivalProcess process = ArrivalProcess::Poisson;
  double arrival_rate = 50.0;   // mean requests per simulated second

  // Bursty process shape (ignored for Poisson). burst_fraction *
  // burst_multiplier must be <= 1 for the off phase to keep the mean; the
  // off-phase rate is floored at 0 otherwise.
  double burst_fraction = 0.2;
  double burst_multiplier = 4.0;
  double cycle_seconds = 2.0;

  std::size_t n_tenants = 1;
  double tenant_skew = 1.0;     // Zipf exponent over tenant ranks

  /// Priority lane per tenant: tenant t gets tenant_classes[t % size()].
  /// Empty = every arrival is Standard (the classic single-class stream).
  /// This is the "derivable per tenant" mapping of DESIGN.md §5 — a
  /// tenant is an interactive product surface, a standard API key, or a
  /// batch analytics pipeline.
  std::vector<llm::PriorityClass> tenant_classes;

  /// Arrivals to generate; 0 = one per table row. When it exceeds the row
  /// count, the row visit order wraps (repeat traffic).
  std::size_t n_requests = 0;
  /// Visit rows in a seeded random permutation (true) or in table order
  /// (false — useful for tests comparing against offline planners).
  bool shuffle_rows = true;

  std::uint64_t seed = 42;
};

struct Arrival {
  std::uint64_t id = 0;     // unique per stream (sequence number)
  double time = 0.0;        // simulated seconds since stream start
  std::size_t row = 0;      // row of the backing table
  std::uint32_t tenant = 0; // 0 is the hottest rank under Zipf skew
  /// Scheduling class (WorkloadOptions::tenant_classes or caller-set).
  llm::PriorityClass priority = llm::PriorityClass::Standard;

  // Session linkage (kNoSession / turn 0 for classic one-shot arrivals).
  // A follow-up turn's prompt extends its parent's prompt+output, so the
  // driver cannot render it up front: follow-ups materialize as *feedback
  // arrivals* when the parent completes (see SessionWorkload).
  std::uint64_t session = kNoSession;  // session id (== root arrival id)
  std::uint32_t turn = 0;              // 0 = session root
  std::uint64_t parent = kNoSession;   // arrival id of the previous turn
};

/// Generate a stream over a table of `n_rows` rows; arrivals are sorted by
/// time (ids follow time order).
std::vector<Arrival> generate_arrivals(std::size_t n_rows,
                                       const WorkloadOptions& options = {});

// ---------------------------------------------------------------------------
// Multi-turn sessions & agentic loops.
//
// A session is a chain of dependent requests: turn k+1's prompt is turn
// k's full prompt plus turn k's generated output plus a fresh segment
// (the next user message, or a tool result). Only turn 0 has a static
// arrival time; turn k+1 arrives `gap_seconds` after turn k *finishes*,
// which the workload generator cannot know. The generator therefore
// emits the roots as a normal time-sorted stream plus a per-session
// *plan* of follow-ups; the online drivers turn each completion into a
// feedback arrival according to the plan.

enum class SessionKind {
  Chat,   // follow-up visits a fresh row (the user asks about new data)
  Agent,  // tool loop: each step re-examines the root row with the tool
          // result appended (ReAct-style observation/action cycles)
};

struct SessionOptions {
  SessionKind kind = SessionKind::Chat;
  /// Total turns per session, >= 1 (1 = plain one-shot stream).
  std::size_t turns = 3;
  /// Mean think-time (Chat) or tool latency (Agent) between a turn's
  /// completion and the next turn's arrival; exponential, floored at
  /// 1 ms so gaps are strictly positive (the threaded runtime's epoch
  /// cap relies on spawn time > parent finish time).
  double mean_gap_seconds = 0.5;
};

struct FollowUpPlan {
  std::size_t row = 0;       // table row the follow-up segment renders
  double gap_seconds = 0.0;  // completion -> arrival delay (> 0)
};

struct SessionPlan {
  /// follow_ups[k] describes turn k+1 (empty = single-turn session).
  std::vector<FollowUpPlan> follow_ups;
};

/// A session workload: time-sorted roots (ids 0..n-1, turn 0) plus one
/// plan per root, indexed by session id == root arrival id.
struct SessionWorkload {
  std::vector<Arrival> roots;
  std::vector<SessionPlan> plans;
  SessionKind kind = SessionKind::Chat;
};

/// Generate a session workload over a table of `n_rows` rows. The roots
/// are bit-identical to generate_arrivals(n_rows, options) — a
/// turns == 1 session run is the same stream as the one-shot run it is
/// compared against. Follow-up rows/gaps come from an independent rng
/// fork, so changing SessionOptions never perturbs the roots.
SessionWorkload generate_sessions(std::size_t n_rows,
                                  const WorkloadOptions& options,
                                  const SessionOptions& sessions);

/// Deterministic synthetic output tokens for session turn chaining: the
/// simulated engine produces no real text, but a follow-up prompt must
/// extend parent prompt + parent *output*, token-exactly, in every
/// driver. Pure function of (session, turn, position); the ids are
/// well-mixed hashes, distinct per (session, turn), so two sessions never
/// share an output segment in the prefix cache.
tokenizer::TokenSeq synth_output_tokens(std::uint64_t session,
                                        std::uint32_t turn, std::size_t len);

/// The textual segment that introduces turn `turn` of a session (turn is
/// >= 1; rendered row JSON is appended after it by the driver).
std::string session_segment_label(SessionKind kind, std::uint32_t turn);

/// Expand a tenant→class mapping (the WorkloadOptions::tenant_classes
/// rule: tenant t gets `tenant_classes[t % size()]`) into one class per
/// arrival, for traces recorded without an explicit class column. Empty
/// mapping = empty result (all-Standard).
std::vector<llm::PriorityClass> classes_for_tenants(
    const std::vector<std::uint32_t>& tenants,
    const std::vector<llm::PriorityClass>& tenant_classes);

/// Trace-driven stream: explicit non-decreasing timestamps. `rows` must be
/// the same length as `times`; `tenants` may be empty (all tenant 0).
/// `classes` is a per-arrival class column (same length as `times`, or
/// empty = every arrival Standard) — a recorded trace replays through the
/// priority path instead of silently flattening to all-Standard. For a
/// tenant-derived assignment, expand with classes_for_tenants(); the
/// length contract is strict because a tenant map the size of the trace
/// would otherwise be silently misread as a class column.
std::vector<Arrival> arrivals_from_trace(
    const std::vector<double>& times, const std::vector<std::size_t>& rows,
    const std::vector<std::uint32_t>& tenants = {},
    const std::vector<llm::PriorityClass>& classes = {});

}  // namespace llmq::serve
