#include "serve/online_driver.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/phc.hpp"

namespace llmq::serve::detail {

namespace {

/// Heap comparator: std::push_heap builds a max-heap, so "later" on top
/// of the comparison gives a min-heap on (time, id).
bool arrives_later(const Arrival& x, const Arrival& y) {
  if (x.time != y.time) return x.time > y.time;
  return x.id > y.id;
}

}  // namespace

void validate_sessions(const OnlineConfig& config,
                       const std::vector<Arrival>& arrivals) {
  if (config.sessions == nullptr) return;
  const SessionWorkload& sw = *config.sessions;
  if (sw.plans.size() != sw.roots.size())
    throw std::invalid_argument(
        "run_online: session workload plans/roots size mismatch");
  if (arrivals.size() != sw.roots.size())
    throw std::invalid_argument(
        "run_online: with config.sessions set, arrivals must be "
        "sessions->roots");
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (arrivals[i].id != sw.roots[i].id ||
        arrivals[i].session != static_cast<std::uint64_t>(i) ||
        arrivals[i].turn != 0)
      throw std::invalid_argument(
          "run_online: arrival stream does not match sessions->roots");
  }
}

double ArrivalFeed::next_time() const {
  double t = std::numeric_limits<double>::infinity();
  if (next_ < statics_->size()) t = (*statics_)[next_].time;
  if (!heap_.empty()) t = std::min(t, heap_.front().time);
  return t;
}

Arrival ArrivalFeed::pop() {
  const bool have_static = next_ < statics_->size();
  if (have_static &&
      (heap_.empty() || !arrives_later((*statics_)[next_], heap_.front())))
    return (*statics_)[next_++];
  std::pop_heap(heap_.begin(), heap_.end(), arrives_later);
  Arrival a = heap_.back();
  heap_.pop_back();
  return a;
}

void ArrivalFeed::push_feedback(const Arrival& a) {
  heap_.push_back(a);
  std::push_heap(heap_.begin(), heap_.end(), arrives_later);
}

void SessionTracker::on_dispatch(const Arrival& a,
                                 const tokenizer::TokenSeq& prompt) {
  if (!will_spawn(a)) return;
  const FollowUpPlan& fo = sessions_->plans[a.session].follow_ups[a.turn];
  gaps_.insert(fo.gap_seconds);
  ctx_.emplace(a.id, SpawnCtx{prompt, fo.gap_seconds});
}

std::optional<Arrival> SessionTracker::on_complete(
    const Arrival& a, const llm::RequestResult& res) {
  if (!will_spawn(a)) return std::nullopt;
  const auto it = ctx_.find(a.id);
  if (it == ctx_.end())
    throw std::logic_error("SessionTracker: completion without dispatch");
  SpawnCtx ctx = std::move(it->second);
  ctx_.erase(it);
  gaps_.erase(gaps_.find(ctx.gap));

  const FollowUpPlan& fo = sessions_->plans[a.session].follow_ups[a.turn];
  Arrival child;
  child.id = next_id_++;
  child.time = res.finish_time + ctx.gap;
  child.row = fo.row;
  child.tenant = a.tenant;
  child.priority = a.priority;
  child.session = a.session;
  child.turn = a.turn + 1;
  child.parent = a.id;

  tokenizer::TokenSeq prefix = std::move(ctx.prompt);
  const tokenizer::TokenSeq synth =
      synth_output_tokens(a.session, a.turn, res.output_tokens);
  prefix.insert(prefix.end(), synth.begin(), synth.end());
  child_prefix_.emplace(child.id, std::move(prefix));
  return child;
}

tokenizer::TokenSeq SessionTracker::make_child_prompt(
    const Arrival& a, const table::Table& t,
    std::span<const std::size_t> fo) {
  const auto it = child_prefix_.find(a.id);
  if (it == child_prefix_.end())
    throw std::logic_error("SessionTracker: follow-up dispatch without spawn");
  tokenizer::TokenSeq prompt = std::move(it->second);
  child_prefix_.erase(it);
  // One concatenated string through one encode_append call, so a test can
  // reproduce the turn's added length as count(label + rendered row).
  const std::string tail = session_segment_label(sessions_->kind, a.turn) +
                           query::render_row_json(t, a.row, fo);
  tokenizer::global_tokenizer().encode_append(tail, prompt);
  return prompt;
}

double SessionTracker::min_inflight_gap() const {
  return gaps_.empty() ? std::numeric_limits<double>::infinity()
                       : *gaps_.begin();
}

std::unordered_map<std::uint64_t, std::size_t> index_arrivals(
    const table::Table& t, const std::vector<Arrival>& arrivals) {
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  index_of.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (i > 0 && arrivals[i].time < arrivals[i - 1].time)
      throw std::invalid_argument("run_online: arrivals must be time-sorted");
    if (arrivals[i].row >= t.num_rows())
      throw std::invalid_argument("run_online: arrival row out of range");
    if (!index_of.emplace(arrivals[i].id, i).second)
      throw std::invalid_argument("run_online: arrival ids must be unique");
  }
  return index_of;
}

llm::Request make_request(const Arrival& a, tokenizer::TokenSeq prompt,
                          const llm::TaskModel& task_model,
                          const OnlineConfig& config,
                          const LengthPredictor* predictor) {
  llm::Request r;
  r.id = a.id;
  r.row_tag = a.row;
  r.prompt = std::move(prompt);
  r.priority = a.priority;
  const std::string key = std::to_string(a.tenant) + ":" +
                          std::to_string(a.row) + ":" + std::to_string(a.id);
  double avg =
      config.avg_output_tokens *
      config.class_output_multiplier[static_cast<std::size_t>(a.priority)];
  if (!config.tenant_output_multiplier.empty())
    avg *= config.tenant_output_multiplier[a.tenant %
                                           config.tenant_output_multiplier
                                               .size()];
  r.output_tokens = task_model.output_tokens(key, avg);
  if (predictor != nullptr) {
    r.predicted_output_tokens = predictor->predict_tokens(a.tenant);
  }
  return r;
}

ServedRequest stitch(const llm::RequestResult& res, const InFlight& f) {
  ServedRequest sr;
  sr.id = res.id;
  sr.tenant = f.arrival.tenant;
  sr.row = f.arrival.row;
  sr.replica = f.replica;
  sr.arrival_time = f.arrival.time;
  sr.dispatch_time = f.dispatch_time;
  sr.admit_time = res.admit_time;
  sr.first_token_time = res.first_token_time;
  sr.finish_time = res.finish_time;
  sr.prompt_tokens = res.prompt_tokens;
  sr.cached_tokens = res.cached_tokens;
  sr.output_tokens = res.output_tokens;
  sr.priority = f.arrival.priority;
  sr.preemptions = res.preemptions;
  sr.recomputed_tokens = res.recomputed_tokens;
  sr.session = f.arrival.session;
  sr.turn = f.arrival.turn;
  return sr;
}

void count_tenant(std::vector<std::size_t>& per_tenant, std::uint32_t tenant) {
  if (tenant >= per_tenant.size()) per_tenant.resize(tenant + 1, 0);
  ++per_tenant[tenant];
}

void finalize_emitted(OnlineRunResult& out, const table::Table& t,
                      const std::vector<Arrival>& arrivals,
                      const OnlineConfig& config,
                      std::vector<std::size_t> emitted_rows,
                      std::vector<std::vector<std::size_t>> emitted_fields) {
  out.latency = summarize_latency(out.requests, config.ttft_slo_seconds);
  out.per_class = summarize_by_class(out.requests, config.ttft_slo_seconds);
  out.emitted =
      core::Ordering(std::move(emitted_rows), std::move(emitted_fields));
  std::vector<std::size_t> arrival_rows;
  arrival_rows.reserve(arrivals.size());
  for (const Arrival& a : arrivals) arrival_rows.push_back(a.row);
  out.phc = core::phc(t.take_rows(arrival_rows), out.emitted,
                      config.scheduler.ggr.measure);
}

}  // namespace llmq::serve::detail
