#include "serve/online_driver.hpp"

#include <stdexcept>
#include <string>

#include "core/phc.hpp"

namespace llmq::serve::detail {

std::unordered_map<std::uint64_t, std::size_t> index_arrivals(
    const table::Table& t, const std::vector<Arrival>& arrivals) {
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  index_of.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (i > 0 && arrivals[i].time < arrivals[i - 1].time)
      throw std::invalid_argument("run_online: arrivals must be time-sorted");
    if (arrivals[i].row >= t.num_rows())
      throw std::invalid_argument("run_online: arrival row out of range");
    if (!index_of.emplace(arrivals[i].id, i).second)
      throw std::invalid_argument("run_online: arrival ids must be unique");
  }
  return index_of;
}

llm::Request make_request(const Arrival& a, tokenizer::TokenSeq prompt,
                          const llm::TaskModel& task_model,
                          const OnlineConfig& config) {
  llm::Request r;
  r.id = a.id;
  r.row_tag = a.row;
  r.prompt = std::move(prompt);
  r.priority = a.priority;
  const std::string key = std::to_string(a.tenant) + ":" +
                          std::to_string(a.row) + ":" + std::to_string(a.id);
  const double avg =
      config.avg_output_tokens *
      config.class_output_multiplier[static_cast<std::size_t>(a.priority)];
  r.output_tokens = task_model.output_tokens(key, avg);
  return r;
}

ServedRequest stitch(const llm::RequestResult& res, const InFlight& f) {
  ServedRequest sr;
  sr.id = res.id;
  sr.tenant = f.arrival.tenant;
  sr.row = f.arrival.row;
  sr.replica = f.replica;
  sr.arrival_time = f.arrival.time;
  sr.dispatch_time = f.dispatch_time;
  sr.admit_time = res.admit_time;
  sr.first_token_time = res.first_token_time;
  sr.finish_time = res.finish_time;
  sr.prompt_tokens = res.prompt_tokens;
  sr.cached_tokens = res.cached_tokens;
  sr.output_tokens = res.output_tokens;
  sr.priority = f.arrival.priority;
  sr.preemptions = res.preemptions;
  sr.recomputed_tokens = res.recomputed_tokens;
  return sr;
}

void count_tenant(std::vector<std::size_t>& per_tenant, std::uint32_t tenant) {
  if (tenant >= per_tenant.size()) per_tenant.resize(tenant + 1, 0);
  ++per_tenant[tenant];
}

void finalize_emitted(OnlineRunResult& out, const table::Table& t,
                      const std::vector<Arrival>& arrivals,
                      const OnlineConfig& config,
                      std::vector<std::size_t> emitted_rows,
                      std::vector<std::vector<std::size_t>> emitted_fields) {
  out.latency = summarize_latency(out.requests, config.ttft_slo_seconds);
  out.per_class = summarize_by_class(out.requests, config.ttft_slo_seconds);
  out.emitted =
      core::Ordering(std::move(emitted_rows), std::move(emitted_fields));
  std::vector<std::size_t> arrival_rows;
  arrival_rows.reserve(arrivals.size());
  for (const Arrival& a : arrivals) arrival_rows.push_back(a.row);
  out.phc = core::phc(t.take_rows(arrival_rows), out.emitted,
                      config.scheduler.ggr.measure);
}

}  // namespace llmq::serve::detail
