#pragma once
// Replica router: dispatch scheduled requests across N serving replicas.
//
// A replica is an independent ServingEngine + PrefixCache + EngineSession;
// nothing is shared between replicas, so where a request lands decides
// which radix tree its prefix can hit. Naive routing (round-robin) deals
// consecutive requests to different replicas — exactly the requests the
// windowed-GGR scheduler just ordered to be prefix-adjacent — and so
// destroys the locality the reordering created. Cache-affinity routing is
// the serving-layer dual of the paper's reordering idea: reordering makes
// prefix-sharing requests *temporally* adjacent, affinity routing keeps
// them *spatially* together on the replica that already holds the prefix.
//
// Policies:
//   * RoundRobin     — cycle replicas; the locality-oblivious baseline;
//   * LeastLoaded    — fewest outstanding prompt tokens (join the
//                      shortest queue, measured in work not requests);
//   * TenantHash     — hash the tenant id; same tenant, same replica —
//                      affinity without probing, blind to load and to
//                      cross-tenant sharing;
//   * PrefixAffinity — probe every replica's radix tree with the
//                      read-only PrefixCache::peek_tiers() path and pick
//                      the best TIER-WEIGHTED cached prefix (a GPU-
//                      resident hit outranks a host hit outranks a disk
//                      hit: score = 4*gpu + 2*host + 1*disk matched
//                      tokens — on a flat cache that is 4*peek(), a
//                      monotone transform, so flat routing is identical
//                      to the historical longest-prefix rule including
//                      every tie), tie-breaking by load; when
//                      nothing is cached anywhere it falls back to the
//                      tenant hash (not load), so a cold same-prefix
//                      burst lands on one replica instead of being dealt
//                      across the fleet before its first prefill admits;
//                      and when the preferred replica's backlog exceeds
//                      2x the fleet minimum it spills to the
//                      least-loaded replica — affinity with a load
//                      guard, so a hot prefix cannot pin its whole
//                      tenant to one overloaded replica.
//
// The probe contract: route() only ever calls the const peek() path — no
// LRU touch, no pin, no stats. Losing a routing comparison must not
// perturb a replica's cache, or the probes themselves would skew the
// recency order they are probing.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/prefix_cache.hpp"

namespace llmq::serve {

enum class RouterPolicy { RoundRobin, LeastLoaded, TenantHash, PrefixAffinity };

std::string to_string(RouterPolicy p);
std::optional<RouterPolicy> router_policy_from_string(const std::string& name);

class Router {
 public:
  /// What the router may see of a replica at routing time: a read-only
  /// cache handle to probe, the replica's outstanding prompt tokens, and
  /// whether it is draining (scale-down in progress: it finishes its
  /// in-flight work but must receive nothing new). Every policy routes
  /// around draining replicas; with none draining the behavior is
  /// bit-identical to the pre-elasticity router.
  struct ReplicaView {
    const cache::PrefixCache* cache = nullptr;  // nullptr = never probed
    std::size_t outstanding_prompt_tokens = 0;
    bool draining = false;
  };

  /// Throws std::invalid_argument when `n_replicas` is zero.
  Router(RouterPolicy policy, std::size_t n_replicas);

  RouterPolicy policy() const { return policy_; }
  std::size_t n_replicas() const { return n_; }

  /// Pick the replica for one request. `views.size()` must equal
  /// n_replicas(). Deterministic: ties break toward the lower replica
  /// index (PrefixAffinity breaks prefix-length ties by load first).
  /// Only RoundRobin carries state (the cursor); the rest are pure.
  std::size_t route(std::span<const cache::TokenId> prompt,
                    std::uint32_t tenant,
                    const std::vector<ReplicaView>& views);

 private:
  RouterPolicy policy_;
  std::size_t n_;
  std::size_t rr_next_ = 0;
};

}  // namespace llmq::serve
