#pragma once
// Online serving driver: stream -> scheduler -> engine session.
//
// run_online() is the event loop that turns the paper's batch pipeline
// into a serving scenario. It interleaves three components over one
// simulated clock (the engine session's):
//
//   1. arrivals whose timestamp has passed are fed to the scheduler;
//   2. due windows (row bound or wait deadline, see scheduler.hpp) are
//      planned, materialized into prompts — each tenant gets its own
//      instruction prefix, so cross-tenant prefix sharing is limited the
//      way separate customers' prompts are — and submitted to the engine;
//   3. the engine session advances one decode step at a time; when it is
//      fully idle the clock jumps to the next arrival or deadline.
//
// The emitted schedule is also returned as a core::Ordering over the
// arrival-ordered table, so the online result can be compared head-to-head
// (order and exact PHC) against the offline planners — the equivalence
// property tests/serve/ checks, and the bridge between the paper's batch
// metric and the serving metrics reported here.

#include <vector>

#include "core/ordering.hpp"
#include "llm/engine.hpp"
#include "llm/task_model.hpp"
#include "query/prompt.hpp"
#include "serve/latency.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

namespace llmq::serve {

struct OnlineConfig {
  SchedulerOptions scheduler;
  llm::EngineConfig engine;
  llm::ModelSpec model = llm::llama3_8b();
  llm::GpuSpec gpu = llm::l4();
  /// Output-length channel (same deterministic model the batch executor
  /// uses); only output_tokens() is consulted here.
  llm::ModelProfile model_profile = llm::profile_llama3_8b();
  /// Base prompt; tenant t serves with system_prompt + " [tenant t]".
  query::PromptTemplate prompt;
  double avg_output_tokens = 8.0;
  /// TTFT SLO for goodput accounting; 0 = none.
  double ttft_slo_seconds = 0.0;

  /// Shrink the KV pool to `fraction` of the GPU-derived capacity — same
  /// scaling contract as query::ExecConfig::scale_kv_pool, needed so
  /// scaled-down streams still oversubscribe the cache.
  void scale_kv_pool(double fraction);
};

struct OnlineRunResult {
  std::vector<ServedRequest> requests;  // completion order
  LatencySummary latency;
  llm::EngineMetrics engine;            // includes prompt_cache_hit_rate()
  std::size_t windows = 0;
  double solve_seconds = 0.0;           // planner wall-clock across windows
  /// Emission order as an Ordering over the arrival-ordered table
  /// (t.take_rows of the arrivals' rows in arrival order); empty stream =
  /// empty ordering.
  core::Ordering emitted;
  /// Exact PHC of `emitted` under the scheduler's length measure.
  double phc = 0.0;
  /// Completed requests per tenant id.
  std::vector<std::size_t> per_tenant;
};

/// Serve `arrivals` (sorted by time, unique ids) drawn from rows of `t`.
OnlineRunResult run_online(const table::Table& t, const table::FdSet& fds,
                           const std::vector<Arrival>& arrivals,
                           const OnlineConfig& config);

}  // namespace llmq::serve
