#pragma once
// Online serving driver: stream -> scheduler -> router -> engine replicas.
//
// run_online() is the event loop that turns the paper's batch pipeline
// into a serving scenario. It interleaves four components over simulated
// time:
//
//   1. arrivals whose timestamp has passed are fed to the scheduler;
//   2. due windows (row bound or wait deadline, see scheduler.hpp) are
//      planned, materialized into prompts — each tenant gets its own
//      instruction prefix, so cross-tenant prefix sharing is limited the
//      way separate customers' prompts are;
//   3. each request of a window is routed (router.hpp) to one of
//      n_replicas independent engine+cache replicas and submitted there;
//   4. replicas advance one decode step at a time; when everything is
//      idle the clock jumps to the next arrival or deadline.
//
// Replica clock merge rule: every replica runs its own virtual clock (its
// EngineSession's). The merged loop always steps the busy replica with the
// earliest clock, and the global clock tracks that execution frontier —
// min over busy replica clocks while any replica is busy, catching up to
// the furthest replica clock when all go idle. Work dispatched at global
// time t to a replica whose clock has already passed t queues at the
// replica clock: the same step-boundary quantization a single engine has.
// With n_replicas == 1 the merged loop reduces exactly — event for event —
// to the single-engine loop (the equivalence tests/router/ checks).
//
// The emitted schedule is also returned as a core::Ordering over the
// arrival-ordered table, so the online result can be compared head-to-head
// (order and exact PHC) against the offline planners — the equivalence
// property tests/serve/ checks, and the bridge between the paper's batch
// metric and the serving metrics reported here.

#include <array>
#include <string>
#include <vector>

#include "core/ordering.hpp"
#include "llm/engine.hpp"
#include "llm/task_model.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "query/prompt.hpp"
#include "serve/fleet.hpp"
#include "serve/latency.hpp"
#include "serve/router.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

namespace llmq::serve {

struct OnlineConfig {
  SchedulerOptions scheduler;
  llm::EngineConfig engine;
  llm::ModelSpec model = llm::llama3_8b();
  llm::GpuSpec gpu = llm::l4();
  /// Output-length channel (same deterministic model the batch executor
  /// uses); only output_tokens() is consulted here.
  llm::ModelProfile model_profile = llm::profile_llama3_8b();
  /// Base prompt; tenant t serves with system_prompt + " [tenant t]".
  query::PromptTemplate prompt;
  double avg_output_tokens = 8.0;
  /// Per-class decode-length multiplier over avg_output_tokens, indexed
  /// by PriorityClass: interactive rows are typically short completions,
  /// batch analytics generations long ones. All-ones = one shared output
  /// model (the classic stream).
  std::array<double, llm::kNumPriorityClasses> class_output_multiplier = {
      1.0, 1.0, 1.0};
  /// Per-tenant decode-length multiplier over avg_output_tokens: tenant t
  /// uses tenant_output_multiplier[t % size()]. Empty = all 1.0 (the
  /// classic stream). Composes multiplicatively with
  /// class_output_multiplier — this is the knob that gives tenants of ONE
  /// class genuinely different output lengths, which is what makes
  /// length-aware (SPJF) scheduling measurable.
  std::vector<double> tenant_output_multiplier;
  /// TTFT SLO for goodput accounting; 0 = none.
  double ttft_slo_seconds = 0.0;

  /// Session workload (multi-turn chat / agentic loops, workload.hpp).
  /// Null = classic one-shot stream. When set, the `arrivals` passed to a
  /// driver MUST be sessions->roots (validated); follow-up turns
  /// materialize as feedback arrivals when their parent completes, with
  /// arrival time = parent finish + the planned gap, and ids allocated
  /// past the roots in completion order — a pure function of the run, so
  /// every driver (virtual-clock, replicated, threaded) spawns the exact
  /// same stream.
  const SessionWorkload* sessions = nullptr;

  /// Output-length predictor (serve/length_predictor.hpp). Each driver
  /// builds one predictor per run, observes every completion in oracle
  /// order, and stamps Request::predicted_output_tokens at dispatch.
  /// Pair with engine.spjf and/or scheduler.spjf to act on the
  /// predictions; with both off the predictor only adds bookkeeping.
  LengthPredictorOptions predictor;

  /// Replication: number of independent engine+cache replicas. `engine`,
  /// `model`, and `gpu` describe ONE replica (n_replicas doubles the
  /// fleet's aggregate KV memory; divide the per-replica pool to hold the
  /// total fixed). 1 = the classic single-engine path.
  std::size_t n_replicas = 1;
  /// How scheduled requests are assigned to replicas (see router.hpp).
  RouterPolicy router = RouterPolicy::PrefixAffinity;
  /// Elastic fleet sizing (fleet.hpp): watermark-driven scale-up/down
  /// with warm-spawn prefix migration. n_replicas is the INITIAL active
  /// count; the fleet may grow to elasticity.max_replicas. Enabling this
  /// routes even n_replicas == 1 runs through the replicated driver.
  ElasticityConfig elasticity;

  /// Observability: optional event sink + time-series sampler threaded
  /// through every component the run constructs (sessions, caches,
  /// scheduler, fleet). Default-null = tracing off at one-branch cost.
  obs::TraceConfig trace;

  /// Shrink the KV pool to `fraction` of the GPU-derived capacity — same
  /// scaling contract as query::ExecConfig::scale_kv_pool, needed so
  /// scaled-down streams still oversubscribe the cache. Applies per
  /// replica.
  void scale_kv_pool(double fraction);

  /// The replica-fleet slice of this configuration (engine/model/gpu,
  /// n_replicas, router) — what ReplicaFleet and the query-serving client
  /// consume.
  FleetConfig fleet() const;
};

// ReplicaMetrics (one replica's slice of a replicated run) lives in
// serve/fleet.hpp with the extracted replica-fleet core.

/// One query's (lane's) slice of a shared-fleet run — the attribution a
/// multi-tenant serving endpoint bills by. Engine-visible token counters
/// cover only requests the fleet actually executed; completions served
/// from the exact-duplicate memo are counted in the dedup_* fields
/// instead, so summing a lane's engine-visible counters over all lanes
/// reproduces the fleet aggregate exactly (a tests/serve/ property).
struct QueryLaneMetrics {
  std::string label;
  /// Scheduling class this lane's invocations are served under.
  llm::PriorityClass priority = llm::PriorityClass::Standard;
  std::size_t requests = 0;         // completions delivered to this query
  std::size_t engine_requests = 0;  // executed on a replica (not memo-served)
  std::uint64_t prompt_tokens = 0;         // engine-visible
  std::uint64_t cached_prompt_tokens = 0;  // engine-visible prefix hits
  std::uint64_t output_tokens = 0;         // engine-visible
  std::size_t dedup_hits = 0;              // completions fanned out from memo
  std::uint64_t dedup_saved_prompt_tokens = 0;
  LatencySummary latency;  // over this query's completions

  double hit_rate() const {
    return prompt_tokens ? static_cast<double>(cached_prompt_tokens) /
                               static_cast<double>(prompt_tokens)
                         : 0.0;
  }
};

/// Exact-duplicate memo accounting (paper §dedup): identical
/// (prompt, output-length) invocations are executed once and fanned out.
/// Kept strictly separate from prefix-hit accounting — a memo hit never
/// touches a replica cache, so it inflates neither PHR numerator nor
/// denominator.
struct DedupStats {
  std::size_t leaders = 0;  // unique invocations executed on the fleet
  std::size_t hits = 0;     // completions served by fan-out from a leader
  std::uint64_t saved_prompt_tokens = 0;  // prompt tokens never prefilled
  std::uint64_t saved_output_tokens = 0;  // output tokens never decoded
};

struct OnlineRunResult {
  std::vector<ServedRequest> requests;  // completion order
  LatencySummary latency;
  /// Aggregate over all replicas: token/time counters summed,
  /// total_seconds and peak_batch_size maxed. For n_replicas == 1 this is
  /// exactly the one engine's metrics (includes prompt_cache_hit_rate(),
  /// which aggregates to fleet-wide hit tokens / prompt tokens).
  llm::EngineMetrics engine;
  std::size_t windows = 0;
  double solve_seconds = 0.0;           // planner wall-clock across windows
  /// Emission order as an Ordering over the arrival-ordered table
  /// (t.take_rows of the arrivals' rows in arrival order); empty stream =
  /// empty ordering. Emission = dispatch order, which for a replicated run
  /// is the order requests left the scheduler, not per-replica order.
  core::Ordering emitted;
  /// Exact PHC of `emitted` under the scheduler's length measure.
  double phc = 0.0;
  /// Completed requests per tenant id.
  std::vector<std::size_t> per_tenant;

  /// Per-replica breakdown; size == n_replicas (size 1 for the single
  /// path; the elasticity ceiling when elastic scaling is enabled —
  /// replicas that never activated report all-zero slices).
  std::vector<ReplicaMetrics> replicas;
  /// Per-priority-class breakdown (always kNumPriorityClasses entries in
  /// class order) — the headline view for preemptive scheduling: did
  /// interactive TTFT hold under overload, and what did batch pay for it
  /// (preemptions, recompute, degraded latency)?
  std::vector<PriorityClassMetrics> per_class;
  /// Per-query attribution — filled by the query-serving client
  /// (query_client.hpp); empty for arrival-stream runs, whose unit of
  /// attribution is the tenant (per_tenant above).
  std::vector<QueryLaneMetrics> per_query;
  /// Exact-duplicate memo accounting; all zeros when dedup is off or the
  /// run had no duplicate invocations.
  DedupStats dedup;

  /// Prompt tokens the fleet did not have to prefill, as a fraction of
  /// all prompt tokens submitted: prefix hits + memo fan-outs. Equals
  /// the engine PHR when nothing deduped — the two ledgers compose
  /// additively because memo hits never touch cache stats. This is the
  /// headline metric bench_concurrent_queries reports and the
  /// concurrent-beats-serial acceptance test pins.
  double effective_hit_fraction() const {
    const double saved = static_cast<double>(engine.cached_prompt_tokens +
                                             dedup.saved_prompt_tokens);
    const double total = static_cast<double>(engine.prompt_tokens +
                                             dedup.saved_prompt_tokens);
    return total > 0.0 ? saved / total : 0.0;
  }
  /// Load imbalance: mean over routing decisions of
  /// max_r(outstanding prompt tokens) / mean_r(outstanding prompt tokens).
  /// 1.0 = perfectly balanced at every decision; n_replicas = one replica
  /// took everything. 1.0 when there were no decisions (empty stream).
  double load_imbalance = 1.0;
};

/// Serve `arrivals` (sorted by time, unique ids) drawn from rows of `t`.
/// Dispatches to the single-engine loop when n_replicas == 1 and to the
/// replicated loop otherwise. Throws std::invalid_argument for
/// n_replicas == 0.
OnlineRunResult run_online(const table::Table& t, const table::FdSet& fds,
                           const std::vector<Arrival>& arrivals,
                           const OnlineConfig& config);

/// The replicated driver itself, callable for any n_replicas >= 1. At
/// n_replicas == 1 it is equivalent to the single-engine run_online —
/// same emitted ordering, PHC, hit rate, and timings (the property
/// tests/router/ pins this down); run_online keeps the dedicated single
/// path so that equivalence stays a checkable claim rather than a
/// tautology.
OnlineRunResult run_online_replicated(const table::Table& t,
                                      const table::FdSet& fds,
                                      const std::vector<Arrival>& arrivals,
                                      const OnlineConfig& config);

}  // namespace llmq::serve
