#pragma once
// Serving-latency metrics for the online subsystem.
//
// The batch benchmarks report job time and cache hit rate; a serving
// endpoint is judged on per-request latency under load. Each served
// request carries its full timeline — arrival (workload), dispatch
// (scheduler window flush), admission/first token/finish (engine) — from
// which the summary derives the quantities serving papers report:
//
//   * TTFT          — first token minus arrival (what the user feels;
//                     includes scheduler buffering, queueing, prefill);
//   * queueing delay— admission minus arrival (scheduling + memory waits);
//   * end-to-end    — finish minus arrival;
//   * goodput       — completed requests per second whose TTFT met the
//                     SLO (equals throughput when no SLO is set).
//
// Percentiles use util::percentile (linear interpolation).

#include <cstdint>
#include <vector>

#include "llm/request.hpp"

namespace llmq::serve {

/// One request's stitched timeline. Invariant once served:
/// arrival <= dispatch <= admit <= first_token <= finish.
struct ServedRequest {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  std::size_t row = 0;
  std::size_t replica = 0;  // replica the request was routed to (0 if single)
  double arrival_time = 0.0;
  double dispatch_time = 0.0;
  double admit_time = 0.0;        // post-prefill
  double first_token_time = 0.0;
  double finish_time = 0.0;
  std::size_t prompt_tokens = 0;
  std::size_t cached_tokens = 0;  // prompt tokens served from the KV cache
  std::size_t output_tokens = 0;
  /// Served by the exact-duplicate memo (query-over-serving only): the
  /// completion was fanned out from an identical in-flight or finished
  /// invocation; no replica executed it and cached_tokens is 0 — memo
  /// savings are accounted in DedupStats, not as prefix hits.
  bool deduped = false;
  /// Scheduling class the request was served under.
  llm::PriorityClass priority = llm::PriorityClass::Standard;
  /// Times the engine preempted this request (0 = ran to completion
  /// uninterrupted) and the prefill tokens replayed across its resumes.
  std::size_t preemptions = 0;
  std::uint64_t recomputed_tokens = 0;
  /// Session linkage for multi-turn / agentic streams (see
  /// serve/workload.hpp). session == uint64 max (serve::kNoSession) and
  /// turn == 0 for classic one-shot arrivals.
  std::uint64_t session = static_cast<std::uint64_t>(-1);
  std::uint32_t turn = 0;

  double ttft() const { return first_token_time - arrival_time; }
  double queue_delay() const { return admit_time - arrival_time; }
  double e2e_latency() const { return finish_time - arrival_time; }
  /// Mean inter-token latency over this request's decode: the gap between
  /// consecutive output tokens, averaged. Undefined (0) for single-token
  /// completions — they have no inter-token gap. Monolithic admission
  /// prefill inflates this for every request that was mid-decode when a
  /// long prompt arrived; chunked prefill bounds it.
  double mean_itl() const {
    return output_tokens > 1 ? (finish_time - first_token_time) /
                                   static_cast<double>(output_tokens - 1)
                             : 0.0;
  }
};

struct LatencySummary {
  std::size_t count = 0;
  double mean_ttft = 0.0;
  double p50_ttft = 0.0;
  double p90_ttft = 0.0;
  double p95_ttft = 0.0;
  double p99_ttft = 0.0;
  double mean_queue_delay = 0.0;
  double p90_queue_delay = 0.0;
  double p99_queue_delay = 0.0;
  /// Inter-token latency percentiles over requests' mean ITL (requests
  /// with >= 2 output tokens; zeros when none qualify). The serving-side
  /// view of decode stalls: a long admission prefill freezes every
  /// in-flight decode, which surfaces here long before it moves TTFT.
  double mean_itl = 0.0;
  double p50_itl = 0.0;
  double p90_itl = 0.0;
  double p99_itl = 0.0;
  double p50_e2e = 0.0;
  double p99_e2e = 0.0;
  double makespan = 0.0;         // last finish - first arrival
  double throughput_rps = 0.0;   // completed / makespan
  double goodput_rps = 0.0;      // completed within the TTFT SLO / makespan
  /// The SLO the summary was computed with, echoed for reporting. Any
  /// value <= 0 means "no SLO": every completed request counts as good, so
  /// goodput_rps == throughput_rps — the sentinel disables the cut, it
  /// does not zero the goodput.
  double ttft_slo = 0.0;
};

/// Aggregate a set of completed requests. `ttft_slo_seconds <= 0` disables
/// the SLO cut (goodput == throughput). Empty input yields a zeroed
/// summary; a zero makespan (e.g. all timestamps identical) reports zero
/// throughput/goodput rather than dividing by zero.
LatencySummary summarize_latency(const std::vector<ServedRequest>& requests,
                                 double ttft_slo_seconds = 0.0);

/// One priority class's slice of a run — the headline breakdown for
/// preemptive scheduling: per-class goodput is what an operator actually
/// sells (interactive TTFT under SLO, batch completion volume), where
/// aggregate latency would average the classes into meaninglessness.
struct PriorityClassMetrics {
  llm::PriorityClass priority = llm::PriorityClass::Standard;
  std::size_t requests = 0;
  std::size_t preemptions = 0;  // preempt events suffered by this class
  std::uint64_t recomputed_tokens = 0;
  LatencySummary latency;  // over this class's completions only
};

/// Per-class breakdown, always kNumPriorityClasses entries in class order
/// (Interactive, Standard, Batch); classes with no traffic have zeroed
/// summaries.
std::vector<PriorityClassMetrics> summarize_by_class(
    const std::vector<ServedRequest>& requests, double ttft_slo_seconds = 0.0);

}  // namespace llmq::serve
