#include "serve/online.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "core/phc.hpp"
#include "llm/cost_model.hpp"
#include "llm/engine_session.hpp"

namespace llmq::serve {

void OnlineConfig::scale_kv_pool(double fraction) {
  engine.kv_pool_blocks_override =
      llm::scaled_kv_pool_blocks(model, gpu, engine.block_size, fraction);
}

namespace {

struct InFlight {
  Arrival arrival;
  double dispatch_time = 0.0;
};

}  // namespace

OnlineRunResult run_online(const table::Table& t, const table::FdSet& fds,
                           const std::vector<Arrival>& arrivals,
                           const OnlineConfig& config) {
  OnlineRunResult out;
  if (arrivals.empty()) return out;

  // id -> arrival index, for the emitted Ordering over the arrival table.
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  index_of.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (i > 0 && arrivals[i].time < arrivals[i - 1].time)
      throw std::invalid_argument("run_online: arrivals must be time-sorted");
    if (arrivals[i].row >= t.num_rows())
      throw std::invalid_argument("run_online: arrival row out of range");
    if (!index_of.emplace(arrivals[i].id, i).second)
      throw std::invalid_argument("run_online: arrival ids must be unique");
  }

  OnlineScheduler scheduler(t, fds, config.scheduler);
  llm::ServingEngine engine(llm::CostModel(config.model, config.gpu),
                            config.engine);
  cache::PrefixCache cache = engine.make_session_cache();
  llm::EngineSession session(engine, cache);
  const llm::TaskModel task_model(config.model_profile);

  // Per-tenant prompt encoders, built lazily: each tenant's instruction
  // prefix differs, so rows share the instruction prefix only within a
  // tenant — the structure that makes Tenant-GGR partitioning matter.
  std::unordered_map<std::uint32_t, query::PromptEncoder> encoders;
  const auto encoder_for = [&](std::uint32_t tenant) -> query::PromptEncoder& {
    auto it = encoders.find(tenant);
    if (it == encoders.end()) {
      query::PromptTemplate tmpl = config.prompt;
      tmpl.system_prompt += " [tenant " + std::to_string(tenant) + "]";
      it = encoders.emplace(tenant, query::PromptEncoder(std::move(tmpl)))
               .first;
    }
    return it->second;
  };

  std::unordered_map<std::uint64_t, InFlight> inflight;
  std::vector<std::size_t> emitted_rows;
  std::vector<std::vector<std::size_t>> emitted_fields;
  emitted_rows.reserve(arrivals.size());
  emitted_fields.reserve(arrivals.size());

  const auto dispatch = [&](const Window& w) {
    ++out.windows;
    out.solve_seconds += w.solve_seconds;
    for (std::size_t i = 0; i < w.arrivals.size(); ++i) {
      const Arrival& a = w.arrivals[i];
      const std::vector<std::size_t>& fo = w.field_orders[i];
      llm::Request r;
      r.id = a.id;
      r.row_tag = a.row;
      r.prompt = encoder_for(a.tenant).encode(t, a.row, fo);
      const std::string key = std::to_string(a.tenant) + ":" +
                              std::to_string(a.row) + ":" +
                              std::to_string(a.id);
      r.output_tokens =
          task_model.output_tokens(key, config.avg_output_tokens);
      session.submit(std::move(r));
      inflight.emplace(a.id, InFlight{a, w.planned_at});
      emitted_rows.push_back(index_of.at(a.id));
      emitted_fields.push_back(fo);
    }
  };

  const auto record = [&](const llm::RequestResult& res) {
    const InFlight& f = inflight.at(res.id);
    ServedRequest sr;
    sr.id = res.id;
    sr.tenant = f.arrival.tenant;
    sr.row = f.arrival.row;
    sr.arrival_time = f.arrival.time;
    sr.dispatch_time = f.dispatch_time;
    sr.admit_time = res.admit_time;
    sr.first_token_time = res.first_token_time;
    sr.finish_time = res.finish_time;
    sr.prompt_tokens = res.prompt_tokens;
    sr.cached_tokens = res.cached_tokens;
    sr.output_tokens = res.output_tokens;
    if (sr.tenant >= out.per_tenant.size())
      out.per_tenant.resize(sr.tenant + 1, 0);
    ++out.per_tenant[sr.tenant];
    out.requests.push_back(sr);
    inflight.erase(res.id);
  };

  // ---- Event loop over the session's simulated clock. ----
  std::size_t next = 0;
  const std::size_t n = arrivals.size();
  while (next < n || scheduler.buffered() > 0 || session.has_work()) {
    // 1. Feed arrivals that have occurred.
    while (next < n && arrivals[next].time <= session.now())
      scheduler.push(arrivals[next++]);
    // 2. Dispatch every due window.
    while (auto w = scheduler.pop_ready(session.now())) dispatch(*w);
    // 3. Execute or advance time.
    if (session.has_work()) {
      const llm::EngineSession::StepEvents ev = session.step();
      for (const llm::RequestResult& res : ev.completed) record(res);
      continue;
    }
    double t_next = scheduler.next_deadline();
    if (next < n) t_next = std::min(t_next, arrivals[next].time);
    if (std::isfinite(t_next)) {
      session.advance_to(t_next);
    } else if (auto w = scheduler.flush(session.now())) {
      // Stream over, no deadline pending: drain the partial window.
      dispatch(*w);
    } else {
      break;  // defensive: no arrivals, no buffer, no work
    }
  }

  out.engine = session.metrics();
  out.latency = summarize_latency(out.requests, config.ttft_slo_seconds);
  out.emitted =
      core::Ordering(std::move(emitted_rows), std::move(emitted_fields));
  std::vector<std::size_t> arrival_rows;
  arrival_rows.reserve(arrivals.size());
  for (const Arrival& a : arrivals) arrival_rows.push_back(a.row);
  out.phc = core::phc(t.take_rows(arrival_rows), out.emitted,
                      config.scheduler.ggr.measure);
  return out;
}

}  // namespace llmq::serve
