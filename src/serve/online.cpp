#include "serve/online.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "llm/cost_model.hpp"
#include "llm/engine_session.hpp"
#include "serve/online_driver.hpp"

namespace llmq::serve {

// Arrival indexing, prompt encoding, request materialization, completion
// stitching, and finalization are shared with the threaded driver — see
// serve/online_driver.hpp.
using detail::ArrivalFeed;
using detail::count_tenant;
using detail::EncoderMap;
using detail::finalize_emitted;
using detail::index_arrivals;
using detail::InFlight;
using detail::make_request;
using detail::SessionTracker;
using detail::stitch;
using detail::validate_sessions;

void OnlineConfig::scale_kv_pool(double fraction) {
  engine.kv_pool_blocks_override =
      llm::scaled_kv_pool_blocks(model, gpu, engine.block_size, fraction);
}

FleetConfig OnlineConfig::fleet() const {
  FleetConfig f;
  f.engine = engine;
  f.model = model;
  f.gpu = gpu;
  f.n_replicas = n_replicas;
  f.router = router;
  f.elasticity = elasticity;
  return f;
}

OnlineRunResult run_online(const table::Table& t, const table::FdSet& fds,
                           const std::vector<Arrival>& arrivals,
                           const OnlineConfig& config) {
  if (config.n_replicas == 0)
    throw std::invalid_argument("run_online: n_replicas must be positive");
  if (config.n_replicas > 1 || config.elasticity.enabled)
    return run_online_replicated(t, fds, arrivals, config);

  OnlineRunResult out;
  out.replicas.resize(1);
  out.per_class = summarize_by_class({}, config.ttft_slo_seconds);
  if (arrivals.empty()) return out;

  validate_sessions(config, arrivals);
  auto index_of = index_arrivals(t, arrivals);

  OnlineScheduler scheduler(t, fds, config.scheduler);
  llm::ServingEngine engine(llm::CostModel(config.model, config.gpu),
                            config.engine);
  cache::PrefixCache cache = engine.make_session_cache();
  llm::EngineSession session(engine, cache);
  if (config.trace.sink) {
    session.set_trace(config.trace.sink, 0);
    scheduler.set_trace(config.trace.sink);
  }
  obs::SampleClock sampler(config.trace.sampling() ? config.trace.timeseries
                                                   : nullptr,
                           config.trace.sample_interval_seconds);
  const llm::TaskModel task_model(config.model_profile);
  EncoderMap encoders(config.prompt);
  LengthPredictor predictor(config.predictor);
  scheduler.set_predictor(&predictor);
  SessionTracker tracker(config.sessions);
  ArrivalFeed feed(arrivals);
  std::vector<Arrival> spawned;  // feedback arrivals, in spawn order

  std::unordered_map<std::uint64_t, InFlight> inflight;
  std::vector<std::size_t> emitted_rows;
  std::vector<std::vector<std::size_t>> emitted_fields;
  emitted_rows.reserve(arrivals.size());
  emitted_fields.reserve(arrivals.size());

  const auto dispatch = [&](const Window& w) {
    ++out.windows;
    out.solve_seconds += w.solve_seconds;
    for (std::size_t i = 0; i < w.arrivals.size(); ++i) {
      const Arrival& a = w.arrivals[i];
      const std::vector<std::size_t>& fo = w.field_orders[i];
      tokenizer::TokenSeq prompt =
          a.turn > 0 ? tracker.make_child_prompt(a, t, fo)
                     : encoders.for_tenant(a.tenant).encode(t, a.row, fo);
      llm::Request r =
          make_request(a, std::move(prompt), task_model, config, &predictor);
      out.replicas[0].routed_prompt_tokens += r.prompt.size();
      tracker.on_dispatch(a, r.prompt);
      session.submit(std::move(r));
      inflight.emplace(a.id, InFlight{a, w.planned_at, 0});
      emitted_rows.push_back(index_of.at(a.id));
      emitted_fields.push_back(fo);
    }
  };

  const auto record = [&](const llm::RequestResult& res) {
    const InFlight& f = inflight.at(res.id);
    ServedRequest sr = stitch(res, f);
    count_tenant(out.per_tenant, sr.tenant);
    out.requests.push_back(sr);
    if (predictor.enabled()) predictor.observe(f.arrival.tenant, res.output_tokens);
    if (auto child = tracker.on_complete(f.arrival, res)) {
      index_of.emplace(child->id, arrivals.size() + spawned.size());
      spawned.push_back(*child);
      feed.push_feedback(*child);
    }
    inflight.erase(res.id);
  };

  const auto feed_due = [&](double now) {
    while (!feed.exhausted() && feed.next_time() <= now) {
      const Arrival a = feed.pop();
      if (a.turn > 0 && config.trace.sink)
        config.trace.sink->emit({obs::EventKind::TurnSpawn,
                                 static_cast<std::uint8_t>(a.priority),
                                 obs::kGlobalTrack, a.time, a.id, a.session,
                                 a.turn, a.parent});
      scheduler.push(a);
    }
  };

  // ---- Event loop over the session's simulated clock. ----
  while (!feed.exhausted() || scheduler.buffered() > 0 || session.has_work()) {
    if (sampler.due(session.now())) {
      sampler.series()->append(session.now(), 0, session.gauges());
      sampler.advance_past(session.now());
    }
    // 1. Feed arrivals that have occurred (static stream + spawned turns).
    feed_due(session.now());
    // 2. Dispatch every due window.
    while (auto w = scheduler.pop_ready(session.now())) dispatch(*w);
    // 3. Execute or advance time.
    if (session.has_work()) {
      const llm::EngineSession::StepEvents ev = session.step();
      for (const llm::RequestResult& res : ev.completed) record(res);
      continue;
    }
    double t_next = std::min(scheduler.next_deadline(), feed.next_time());
    if (std::isfinite(t_next)) {
      session.advance_to(t_next);
    } else if (auto w = scheduler.flush(session.now())) {
      // Stream over, no deadline pending: drain the partial window.
      dispatch(*w);
    } else {
      break;  // defensive: no arrivals, no buffer, no work
    }
  }

  out.replicas[0].requests = out.requests.size();
  out.replicas[0].engine = session.metrics();
  out.engine = out.replicas[0].engine;
  out.load_imbalance = 1.0;
  if (spawned.empty()) {
    finalize_emitted(out, t, arrivals, config, std::move(emitted_rows),
                     std::move(emitted_fields));
  } else {
    std::vector<Arrival> all = arrivals;
    all.insert(all.end(), spawned.begin(), spawned.end());
    finalize_emitted(out, t, all, config, std::move(emitted_rows),
                     std::move(emitted_fields));
  }
  return out;
}

OnlineRunResult run_online_replicated(const table::Table& t,
                                      const table::FdSet& fds,
                                      const std::vector<Arrival>& arrivals,
                                      const OnlineConfig& config) {
  if (config.n_replicas == 0)
    throw std::invalid_argument(
        "run_online_replicated: n_replicas must be positive");
  const std::size_t n_rep = config.n_replicas;

  OnlineRunResult out;
  out.replicas.resize(n_rep);
  out.per_class = summarize_by_class({}, config.ttft_slo_seconds);
  if (arrivals.empty()) return out;

  validate_sessions(config, arrivals);
  auto index_of = index_arrivals(t, arrivals);

  OnlineScheduler scheduler(t, fds, config.scheduler);
  ReplicaFleet fleet(config.fleet());
  if (config.trace.sink) {
    fleet.set_trace(config.trace.sink);
    scheduler.set_trace(config.trace.sink);
  }
  obs::SampleClock sampler(config.trace.sampling() ? config.trace.timeseries
                                                   : nullptr,
                           config.trace.sample_interval_seconds);
  const llm::TaskModel task_model(config.model_profile);
  EncoderMap encoders(config.prompt);
  LengthPredictor predictor(config.predictor);
  scheduler.set_predictor(&predictor);
  SessionTracker tracker(config.sessions);
  ArrivalFeed feed(arrivals);
  std::vector<Arrival> spawned;  // feedback arrivals, in spawn order

  std::unordered_map<std::uint64_t, InFlight> inflight;
  std::vector<std::size_t> emitted_rows;
  std::vector<std::vector<std::size_t>> emitted_fields;
  emitted_rows.reserve(arrivals.size());
  emitted_fields.reserve(arrivals.size());

  // The merged clock. Never behind any busy replica's execution frontier;
  // catches up to the furthest replica when everything idles
  // (ReplicaFleet::frontier).
  double now = 0.0;

  const auto dispatch = [&](const Window& w) {
    ++out.windows;
    out.solve_seconds += w.solve_seconds;
    for (std::size_t i = 0; i < w.arrivals.size(); ++i) {
      const Arrival& a = w.arrivals[i];
      const std::vector<std::size_t>& fo = w.field_orders[i];
      tokenizer::TokenSeq prompt =
          a.turn > 0 ? tracker.make_child_prompt(a, t, fo)
                     : encoders.for_tenant(a.tenant).encode(t, a.row, fo);
      llm::Request req =
          make_request(a, std::move(prompt), task_model, config, &predictor);
      tracker.on_dispatch(a, req.prompt);
      const std::size_t target = fleet.dispatch(std::move(req), a.tenant, now);
      inflight.emplace(a.id, InFlight{a, w.planned_at, target});
      emitted_rows.push_back(index_of.at(a.id));
      emitted_fields.push_back(fo);
    }
  };

  const auto record = [&](const llm::RequestResult& res) {
    const InFlight& f = inflight.at(res.id);
    ServedRequest sr = stitch(res, f);
    count_tenant(out.per_tenant, sr.tenant);
    out.requests.push_back(sr);
    if (predictor.enabled()) predictor.observe(f.arrival.tenant, res.output_tokens);
    if (auto child = tracker.on_complete(f.arrival, res)) {
      index_of.emplace(child->id, arrivals.size() + spawned.size());
      spawned.push_back(*child);
      feed.push_feedback(*child);
    }
    inflight.erase(res.id);
  };

  const auto feed_due = [&](double t_now) {
    while (!feed.exhausted() && feed.next_time() <= t_now) {
      const Arrival a = feed.pop();
      if (a.turn > 0 && config.trace.sink)
        config.trace.sink->emit({obs::EventKind::TurnSpawn,
                                 static_cast<std::uint8_t>(a.priority),
                                 obs::kGlobalTrack, a.time, a.id, a.session,
                                 a.turn, a.parent});
      scheduler.push(a);
    }
  };

  // ---- Merged event loop over the replicas' virtual clocks. ----
  while (!feed.exhausted() || scheduler.buffered() > 0 || fleet.any_work()) {
    // 0. Advance the merged clock to the execution frontier.
    now = fleet.frontier(now);
    if (sampler.due(now)) {
      fleet.sample_gauges(*sampler.series(), now);
      sampler.advance_past(now);
    }
    // 1. Feed arrivals that have occurred (static stream + spawned turns).
    feed_due(now);
    // 2. Dispatch every due window (routing each request).
    while (auto w = scheduler.pop_ready(now)) dispatch(*w);
    // 3. Execute: step the busy replica with the earliest clock.
    if (fleet.any_work()) {
      ReplicaFleet::StepResult st = fleet.step();
      for (const llm::RequestResult& res : st.completed) record(res);
      continue;
    }
    // 4. Everything idle: jump to the next arrival or deadline, or drain.
    double t_next = std::min(scheduler.next_deadline(), feed.next_time());
    if (std::isfinite(t_next)) {
      now = std::max(now, t_next);
    } else if (auto w = scheduler.flush(now)) {
      // Stream over, no deadline pending: drain the partial window.
      dispatch(*w);
    } else {
      break;  // defensive: no arrivals, no buffer, no work
    }
  }

  out.replicas = fleet.replica_metrics();
  out.engine = aggregate_replica_engines(out.replicas);
  out.load_imbalance = fleet.load_imbalance();
  if (spawned.empty()) {
    finalize_emitted(out, t, arrivals, config, std::move(emitted_rows),
                     std::move(emitted_fields));
  } else {
    std::vector<Arrival> all = arrivals;
    all.insert(all.end(), spawned.begin(), spawned.end());
    finalize_emitted(out, t, all, config, std::move(emitted_rows),
                     std::move(emitted_fields));
  }
  return out;
}

}  // namespace llmq::serve
