#include "serve/online.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "core/phc.hpp"
#include "llm/cost_model.hpp"
#include "llm/engine_session.hpp"

namespace llmq::serve {

void OnlineConfig::scale_kv_pool(double fraction) {
  engine.kv_pool_blocks_override =
      llm::scaled_kv_pool_blocks(model, gpu, engine.block_size, fraction);
}

namespace {

struct InFlight {
  Arrival arrival;
  double dispatch_time = 0.0;
  std::size_t replica = 0;
};

/// Validate the stream and build id -> arrival index (for the emitted
/// Ordering over the arrival table).
std::unordered_map<std::uint64_t, std::size_t> index_arrivals(
    const table::Table& t, const std::vector<Arrival>& arrivals) {
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  index_of.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (i > 0 && arrivals[i].time < arrivals[i - 1].time)
      throw std::invalid_argument("run_online: arrivals must be time-sorted");
    if (arrivals[i].row >= t.num_rows())
      throw std::invalid_argument("run_online: arrival row out of range");
    if (!index_of.emplace(arrivals[i].id, i).second)
      throw std::invalid_argument("run_online: arrival ids must be unique");
  }
  return index_of;
}

/// Per-tenant prompt encoders, built lazily: each tenant's instruction
/// prefix differs, so rows share the instruction prefix only within a
/// tenant — the structure that makes Tenant-GGR partitioning (and
/// tenant-affine routing) matter.
class EncoderMap {
 public:
  explicit EncoderMap(const query::PromptTemplate& base) : base_(base) {}

  query::PromptEncoder& for_tenant(std::uint32_t tenant) {
    auto it = encoders_.find(tenant);
    if (it == encoders_.end()) {
      query::PromptTemplate tmpl = base_;
      tmpl.system_prompt += " [tenant " + std::to_string(tenant) + "]";
      it = encoders_.emplace(tenant, query::PromptEncoder(std::move(tmpl)))
               .first;
    }
    return it->second;
  }

 private:
  query::PromptTemplate base_;
  std::unordered_map<std::uint32_t, query::PromptEncoder> encoders_;
};

llm::Request make_request(const Arrival& a, tokenizer::TokenSeq prompt,
                          const llm::TaskModel& task_model,
                          double avg_output_tokens) {
  llm::Request r;
  r.id = a.id;
  r.row_tag = a.row;
  r.prompt = std::move(prompt);
  const std::string key = std::to_string(a.tenant) + ":" +
                          std::to_string(a.row) + ":" + std::to_string(a.id);
  r.output_tokens = task_model.output_tokens(key, avg_output_tokens);
  return r;
}

ServedRequest stitch(const llm::RequestResult& res, const InFlight& f) {
  ServedRequest sr;
  sr.id = res.id;
  sr.tenant = f.arrival.tenant;
  sr.row = f.arrival.row;
  sr.replica = f.replica;
  sr.arrival_time = f.arrival.time;
  sr.dispatch_time = f.dispatch_time;
  sr.admit_time = res.admit_time;
  sr.first_token_time = res.first_token_time;
  sr.finish_time = res.finish_time;
  sr.prompt_tokens = res.prompt_tokens;
  sr.cached_tokens = res.cached_tokens;
  sr.output_tokens = res.output_tokens;
  return sr;
}

void count_tenant(std::vector<std::size_t>& per_tenant, std::uint32_t tenant) {
  if (tenant >= per_tenant.size()) per_tenant.resize(tenant + 1, 0);
  ++per_tenant[tenant];
}

/// Fleet-wide engine metrics: token/time counters sum across replicas;
/// total_seconds and peak_batch_size are maxima (replicas run in
/// parallel). For one replica this is that replica's metrics unchanged.
llm::EngineMetrics aggregate_engines(const std::vector<ReplicaMetrics>& reps) {
  llm::EngineMetrics agg;
  for (const ReplicaMetrics& r : reps) {
    const llm::EngineMetrics& m = r.engine;
    agg.total_seconds = std::max(agg.total_seconds, m.total_seconds);
    agg.prefill_seconds += m.prefill_seconds;
    agg.decode_seconds += m.decode_seconds;
    agg.prompt_tokens += m.prompt_tokens;
    agg.cached_prompt_tokens += m.cached_prompt_tokens;
    agg.computed_prompt_tokens += m.computed_prompt_tokens;
    agg.output_tokens += m.output_tokens;
    agg.decode_steps += m.decode_steps;
    agg.sum_batch_size += m.sum_batch_size;
    agg.peak_batch_size = std::max(agg.peak_batch_size, m.peak_batch_size);
    agg.cache.lookups += m.cache.lookups;
    agg.cache.hit_tokens += m.cache.hit_tokens;
    agg.cache.lookup_tokens += m.cache.lookup_tokens;
    agg.cache.inserted_blocks += m.cache.inserted_blocks;
    agg.cache.evicted_blocks += m.cache.evicted_blocks;
  }
  return agg;
}

void finalize_emitted(OnlineRunResult& out, const table::Table& t,
                      const std::vector<Arrival>& arrivals,
                      const OnlineConfig& config,
                      std::vector<std::size_t> emitted_rows,
                      std::vector<std::vector<std::size_t>> emitted_fields) {
  out.latency = summarize_latency(out.requests, config.ttft_slo_seconds);
  out.emitted =
      core::Ordering(std::move(emitted_rows), std::move(emitted_fields));
  std::vector<std::size_t> arrival_rows;
  arrival_rows.reserve(arrivals.size());
  for (const Arrival& a : arrivals) arrival_rows.push_back(a.row);
  out.phc = core::phc(t.take_rows(arrival_rows), out.emitted,
                      config.scheduler.ggr.measure);
}

}  // namespace

OnlineRunResult run_online(const table::Table& t, const table::FdSet& fds,
                           const std::vector<Arrival>& arrivals,
                           const OnlineConfig& config) {
  if (config.n_replicas == 0)
    throw std::invalid_argument("run_online: n_replicas must be positive");
  if (config.n_replicas > 1)
    return run_online_replicated(t, fds, arrivals, config);

  OnlineRunResult out;
  out.replicas.resize(1);
  if (arrivals.empty()) return out;

  const auto index_of = index_arrivals(t, arrivals);

  OnlineScheduler scheduler(t, fds, config.scheduler);
  llm::ServingEngine engine(llm::CostModel(config.model, config.gpu),
                            config.engine);
  cache::PrefixCache cache = engine.make_session_cache();
  llm::EngineSession session(engine, cache);
  const llm::TaskModel task_model(config.model_profile);
  EncoderMap encoders(config.prompt);

  std::unordered_map<std::uint64_t, InFlight> inflight;
  std::vector<std::size_t> emitted_rows;
  std::vector<std::vector<std::size_t>> emitted_fields;
  emitted_rows.reserve(arrivals.size());
  emitted_fields.reserve(arrivals.size());

  const auto dispatch = [&](const Window& w) {
    ++out.windows;
    out.solve_seconds += w.solve_seconds;
    for (std::size_t i = 0; i < w.arrivals.size(); ++i) {
      const Arrival& a = w.arrivals[i];
      const std::vector<std::size_t>& fo = w.field_orders[i];
      llm::Request r = make_request(
          a, encoders.for_tenant(a.tenant).encode(t, a.row, fo), task_model,
          config.avg_output_tokens);
      out.replicas[0].routed_prompt_tokens += r.prompt.size();
      session.submit(std::move(r));
      inflight.emplace(a.id, InFlight{a, w.planned_at, 0});
      emitted_rows.push_back(index_of.at(a.id));
      emitted_fields.push_back(fo);
    }
  };

  const auto record = [&](const llm::RequestResult& res) {
    const InFlight& f = inflight.at(res.id);
    ServedRequest sr = stitch(res, f);
    count_tenant(out.per_tenant, sr.tenant);
    out.requests.push_back(sr);
    inflight.erase(res.id);
  };

  // ---- Event loop over the session's simulated clock. ----
  std::size_t next = 0;
  const std::size_t n = arrivals.size();
  while (next < n || scheduler.buffered() > 0 || session.has_work()) {
    // 1. Feed arrivals that have occurred.
    while (next < n && arrivals[next].time <= session.now())
      scheduler.push(arrivals[next++]);
    // 2. Dispatch every due window.
    while (auto w = scheduler.pop_ready(session.now())) dispatch(*w);
    // 3. Execute or advance time.
    if (session.has_work()) {
      const llm::EngineSession::StepEvents ev = session.step();
      for (const llm::RequestResult& res : ev.completed) record(res);
      continue;
    }
    double t_next = scheduler.next_deadline();
    if (next < n) t_next = std::min(t_next, arrivals[next].time);
    if (std::isfinite(t_next)) {
      session.advance_to(t_next);
    } else if (auto w = scheduler.flush(session.now())) {
      // Stream over, no deadline pending: drain the partial window.
      dispatch(*w);
    } else {
      break;  // defensive: no arrivals, no buffer, no work
    }
  }

  out.replicas[0].requests = out.requests.size();
  out.replicas[0].engine = session.metrics();
  out.engine = out.replicas[0].engine;
  out.load_imbalance = 1.0;
  finalize_emitted(out, t, arrivals, config, std::move(emitted_rows),
                   std::move(emitted_fields));
  return out;
}

namespace {

/// One serving replica: its own engine, prefix cache, and session clock.
struct Replica {
  llm::ServingEngine engine;
  cache::PrefixCache cache;
  llm::EngineSession session;

  explicit Replica(const OnlineConfig& config)
      : engine(llm::CostModel(config.model, config.gpu), config.engine),
        cache(engine.make_session_cache()),
        session(engine, cache) {}
};

}  // namespace

OnlineRunResult run_online_replicated(const table::Table& t,
                                      const table::FdSet& fds,
                                      const std::vector<Arrival>& arrivals,
                                      const OnlineConfig& config) {
  if (config.n_replicas == 0)
    throw std::invalid_argument(
        "run_online_replicated: n_replicas must be positive");
  const std::size_t n_rep = config.n_replicas;

  OnlineRunResult out;
  out.replicas.resize(n_rep);
  if (arrivals.empty()) return out;

  const auto index_of = index_arrivals(t, arrivals);

  OnlineScheduler scheduler(t, fds, config.scheduler);
  std::vector<std::unique_ptr<Replica>> replicas;
  replicas.reserve(n_rep);
  for (std::size_t r = 0; r < n_rep; ++r)
    replicas.push_back(std::make_unique<Replica>(config));
  Router router(config.router, n_rep);
  const llm::TaskModel task_model(config.model_profile);
  EncoderMap encoders(config.prompt);

  std::unordered_map<std::uint64_t, InFlight> inflight;
  std::vector<std::size_t> emitted_rows;
  std::vector<std::vector<std::size_t>> emitted_fields;
  emitted_rows.reserve(arrivals.size());
  emitted_fields.reserve(arrivals.size());
  double imbalance_sum = 0.0;
  std::size_t imbalance_samples = 0;

  // The merged clock. Never behind any busy replica's execution frontier;
  // catches up to the furthest replica when everything idles.
  double now = 0.0;

  const auto dispatch = [&](const Window& w) {
    ++out.windows;
    out.solve_seconds += w.solve_seconds;
    std::vector<Router::ReplicaView> views(n_rep);
    for (std::size_t i = 0; i < w.arrivals.size(); ++i) {
      const Arrival& a = w.arrivals[i];
      const std::vector<std::size_t>& fo = w.field_orders[i];
      llm::Request req = make_request(
          a, encoders.for_tenant(a.tenant).encode(t, a.row, fo), task_model,
          config.avg_output_tokens);

      for (std::size_t r = 0; r < n_rep; ++r) {
        views[r].cache = &replicas[r]->session.cache();
        views[r].outstanding_prompt_tokens =
            replicas[r]->session.outstanding_prompt_tokens();
      }
      const std::size_t target = router.route(req.prompt, a.tenant, views);
      Replica& rep = *replicas[target];
      // An idle replica has been parked at its last activity; bring it to
      // the dispatch instant so admission cannot happen in the past.
      if (!rep.session.has_work()) rep.session.advance_to(now);

      out.replicas[target].routed_prompt_tokens += req.prompt.size();
      ++out.replicas[target].requests;
      rep.session.submit(std::move(req));
      inflight.emplace(a.id, InFlight{a, w.planned_at, target});
      emitted_rows.push_back(index_of.at(a.id));
      emitted_fields.push_back(fo);

      // Outstanding-load imbalance, sampled after every routing decision.
      std::size_t max_out = 0, sum_out = 0;
      for (std::size_t r = 0; r < n_rep; ++r) {
        const std::size_t o = replicas[r]->session.outstanding_prompt_tokens();
        max_out = std::max(max_out, o);
        sum_out += o;
      }
      const double mean_out =
          static_cast<double>(sum_out) / static_cast<double>(n_rep);
      imbalance_sum += static_cast<double>(max_out) / mean_out;
      ++imbalance_samples;
    }
  };

  const auto record = [&](const llm::RequestResult& res) {
    const InFlight& f = inflight.at(res.id);
    ServedRequest sr = stitch(res, f);
    count_tenant(out.per_tenant, sr.tenant);
    out.requests.push_back(sr);
    inflight.erase(res.id);
  };

  const auto any_work = [&] {
    for (const auto& r : replicas)
      if (r->session.has_work()) return true;
    return false;
  };
  // Busy replica with the earliest clock, or n_rep when all are idle.
  const auto earliest_busy = [&] {
    std::size_t best = n_rep;
    for (std::size_t r = 0; r < n_rep; ++r) {
      if (!replicas[r]->session.has_work()) continue;
      if (best == n_rep ||
          replicas[r]->session.now() < replicas[best]->session.now())
        best = r;
    }
    return best;
  };

  // ---- Merged event loop over the replicas' virtual clocks. ----
  std::size_t next = 0;
  const std::size_t n = arrivals.size();
  while (next < n || scheduler.buffered() > 0 || any_work()) {
    // 0. Advance the merged clock to the execution frontier.
    const std::size_t frontier = earliest_busy();
    if (frontier < n_rep) {
      now = std::max(now, replicas[frontier]->session.now());
    } else {
      for (const auto& r : replicas) now = std::max(now, r->session.now());
    }
    // 1. Feed arrivals that have occurred.
    while (next < n && arrivals[next].time <= now)
      scheduler.push(arrivals[next++]);
    // 2. Dispatch every due window (routing each request).
    while (auto w = scheduler.pop_ready(now)) dispatch(*w);
    // 3. Execute: step the busy replica with the earliest clock.
    const std::size_t busy = earliest_busy();
    if (busy < n_rep) {
      const llm::EngineSession::StepEvents ev = replicas[busy]->session.step();
      for (const llm::RequestResult& res : ev.completed) record(res);
      continue;
    }
    // 4. Everything idle: jump to the next arrival or deadline, or drain.
    double t_next = scheduler.next_deadline();
    if (next < n) t_next = std::min(t_next, arrivals[next].time);
    if (std::isfinite(t_next)) {
      now = std::max(now, t_next);
    } else if (auto w = scheduler.flush(now)) {
      // Stream over, no deadline pending: drain the partial window.
      dispatch(*w);
    } else {
      break;  // defensive: no arrivals, no buffer, no work
    }
  }

  for (std::size_t r = 0; r < n_rep; ++r)
    out.replicas[r].engine = replicas[r]->session.metrics();
  out.engine = aggregate_engines(out.replicas);
  out.load_imbalance = imbalance_samples
                           ? imbalance_sum /
                                 static_cast<double>(imbalance_samples)
                           : 1.0;
  finalize_emitted(out, t, arrivals, config, std::move(emitted_rows),
                   std::move(emitted_fields));
  return out;
}

}  // namespace llmq::serve
