#include "serve/fleet.hpp"

#include <algorithm>
#include <stdexcept>

#include "llm/cost_model.hpp"

namespace llmq::serve {

void FleetConfig::scale_kv_pool(double fraction) {
  engine.kv_pool_blocks_override =
      llm::scaled_kv_pool_blocks(model, gpu, engine.block_size, fraction);
}

llm::EngineMetrics aggregate_replica_engines(
    const std::vector<ReplicaMetrics>& replicas) {
  llm::EngineMetrics agg;
  for (const ReplicaMetrics& r : replicas) {
    const llm::EngineMetrics& m = r.engine;
    agg.total_seconds = std::max(agg.total_seconds, m.total_seconds);
    agg.prefill_seconds += m.prefill_seconds;
    agg.decode_seconds += m.decode_seconds;
    agg.prompt_tokens += m.prompt_tokens;
    agg.cached_prompt_tokens += m.cached_prompt_tokens;
    agg.computed_prompt_tokens += m.computed_prompt_tokens;
    agg.output_tokens += m.output_tokens;
    agg.decode_steps += m.decode_steps;
    agg.sum_batch_size += m.sum_batch_size;
    agg.peak_batch_size = std::max(agg.peak_batch_size, m.peak_batch_size);
    agg.preemptions += m.preemptions;
    agg.recompute_prefill_tokens += m.recompute_prefill_tokens;
    agg.recompute_prefill_seconds += m.recompute_prefill_seconds;
    agg.prefill_chunks += m.prefill_chunks;
    agg.chunked_prefill_tokens += m.chunked_prefill_tokens;
    agg.max_decode_stall_seconds =
        std::max(agg.max_decode_stall_seconds, m.max_decode_stall_seconds);
    agg.promoted_host_blocks += m.promoted_host_blocks;
    agg.promoted_disk_blocks += m.promoted_disk_blocks;
    agg.promote_seconds += m.promote_seconds;
    agg.cache += m.cache;
  }
  return agg;
}

ReplicaFleet::ReplicaFleet(const FleetConfig& config)
    : router_(config.router,
              config.elasticity.enabled
                  ? config.elasticity.ceiling(config.n_replicas)
                  : (config.n_replicas ? config.n_replicas : 1)),
      elastic_(config.elasticity),
      block_size_(config.engine.block_size) {
  if (config.n_replicas == 0)
    throw std::invalid_argument("ReplicaFleet: n_replicas must be positive");
  const std::size_t total = elastic_.enabled
                                ? elastic_.ceiling(config.n_replicas)
                                : config.n_replicas;
  replicas_.reserve(total);
  for (std::size_t r = 0; r < total; ++r)
    replicas_.push_back(std::make_unique<Replica>(config));
  counters_.resize(total);
  active_.assign(total, 0);
  draining_.assign(total, 0);
  for (std::size_t r = 0; r < config.n_replicas; ++r) active_[r] = 1;
}

std::size_t ReplicaFleet::active_replicas() const {
  std::size_t n = 0;
  for (char a : active_) n += a ? 1u : 0u;
  return n;
}

void ReplicaFleet::complete_migrations(double now) {
  for (std::size_t i = 0; i < pending_.size();) {
    PendingMigration& m = pending_[i];
    if (m.land_time > now) {
      ++i;
      continue;
    }
    // The transfer landed: the recipient materializes the prefixes (no
    // lookup/hit stats — migrated blocks must not count as prefix hits),
    // then the donor's transfer pins come off so its LRU may finally
    // evict them. Event time is the dispatch that OBSERVES the landing,
    // not land_time itself: other global-track events (window plans)
    // may have been emitted between land_time and this dispatch, and
    // the trace contract keeps every track's clock monotone.
    cache::PrefixCache& dst = replicas_[m.recipient]->cache;
    for (const tokenizer::TokenSeq& p : m.batch.prefixes) dst.admit_migrated(p);
    if (trace_)
      trace_->emit({obs::EventKind::PrefixMigrate, 0, obs::kGlobalTrack,
                    now, 0, m.batch.blocks, m.donor, m.recipient});
    replicas_[m.donor]->cache.end_migration(m.batch);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

void ReplicaFleet::maybe_scale(double now) {
  complete_migrations(now);
  // A draining replica parks once its in-flight work AND any transfer it
  // is party to have finished; its cache stays warm for re-activation.
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (!draining_[r] || replicas_[r]->session.has_work()) continue;
    bool migrating = false;
    for (const PendingMigration& m : pending_)
      migrating |= (m.donor == r || m.recipient == r);
    if (migrating) continue;
    draining_[r] = 0;
    active_[r] = 0;
    if (trace_)
      trace_->emit({obs::EventKind::ReplicaDrain, 0, obs::kGlobalTrack, now, 0,
                    active_replicas(), 0, 0});
  }
  if (now - last_scale_ < elastic_.cooldown_seconds) return;
  // Serving load: mean outstanding prompt tokens per active non-draining
  // replica (a draining replica finishes its backlog but takes nothing
  // new, so it neither serves nor counts).
  std::size_t serving = 0, outstanding = 0;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (!active_[r] || draining_[r]) continue;
    ++serving;
    outstanding += replicas_[r]->session.outstanding_prompt_tokens();
  }
  if (serving == 0) return;
  const double mean =
      static_cast<double>(outstanding) / static_cast<double>(serving);
  if (elastic_.high_watermark_tokens > 0 &&
      mean > static_cast<double>(elastic_.high_watermark_tokens)) {
    std::size_t spawn = replicas_.size();
    for (std::size_t r = 0; r < replicas_.size(); ++r)
      if (!active_[r]) {
        spawn = r;
        break;
      }
    if (spawn == replicas_.size()) return;  // at the ceiling
    active_[spawn] = 1;
    last_scale_ = now;
    bool warmed = false;
    if (elastic_.migrate_max_blocks > 0) {
      // Warm the spawn from the most-loaded serving peer (tie: lowest
      // index). Until the transfer lands the spawn serves cold.
      std::size_t donor = replicas_.size(), donor_out = 0;
      for (std::size_t r = 0; r < replicas_.size(); ++r) {
        if (!active_[r] || draining_[r] || r == spawn) continue;
        const std::size_t o =
            replicas_[r]->session.outstanding_prompt_tokens();
        if (donor == replicas_.size() || o > donor_out) {
          donor = r;
          donor_out = o;
        }
      }
      if (donor < replicas_.size()) {
        cache::PrefixCache::MigrationBatch batch =
            replicas_[donor]->cache.begin_migration(
                elastic_.migrate_max_blocks);
        if (batch.blocks > 0) {
          // Inter-replica KV streaming priced like a host-tier transfer.
          const double land =
              now + replicas_[donor]->engine.cost_model().promote_seconds(
                        batch.blocks, 0, block_size_);
          warmed = true;
          pending_.push_back({donor, spawn, std::move(batch), land});
        } else {
          replicas_[donor]->cache.end_migration(batch);
        }
      }
    }
    if (trace_)
      trace_->emit({obs::EventKind::ReplicaSpawn, 0, obs::kGlobalTrack, now, 0,
                    active_replicas(), warmed ? 1u : 0u, 0});
    return;
  }
  if (elastic_.low_watermark_tokens > 0 && serving > elastic_.min_replicas &&
      mean < static_cast<double>(elastic_.low_watermark_tokens)) {
    // Drain the highest-index serving replica; ReplicaDrain is emitted
    // when it actually parks, above.
    for (std::size_t r = replicas_.size(); r-- > 0;) {
      if (active_[r] && !draining_[r]) {
        draining_[r] = 1;
        last_scale_ = now;
        break;
      }
    }
  }
}

std::size_t ReplicaFleet::dispatch(llm::Request req, std::uint32_t tenant,
                                   double now) {
  if (elastic_.enabled) maybe_scale(now);
  const std::size_t n_rep = replicas_.size();
  views_.resize(n_rep);  // member buffer: dispatch is the per-request hot path
  for (std::size_t r = 0; r < n_rep; ++r) {
    views_[r].cache = &replicas_[r]->session.cache();
    views_[r].outstanding_prompt_tokens =
        replicas_[r]->session.outstanding_prompt_tokens();
    views_[r].draining = !active_[r] || draining_[r] != 0;
  }
  const std::size_t target = router_.route(req.prompt, tenant, views_);
  Replica& rep = *replicas_[target];
  if (trace_) {
    // Re-probe the winner with the const, side-effect-free peek() —
    // traced runs must stay bit-identical to untraced ones.
    trace_->emit({obs::EventKind::RouteDecision,
                  static_cast<std::uint8_t>(req.priority), obs::kGlobalTrack,
                  now, req.id, target,
                  views_[target].cache->peek(req.prompt),
                  views_[target].outstanding_prompt_tokens});
  }
  // An idle replica has been parked at its last activity; bring it to the
  // dispatch instant so admission cannot happen in the past.
  if (!rep.session.has_work()) rep.session.advance_to(now);

  counters_[target].routed_prompt_tokens += req.prompt.size();
  ++counters_[target].requests;
  rep.session.submit(std::move(req));

  // Outstanding-load imbalance over the active set, sampled after every
  // routing decision (every replica is active in a fixed-size fleet).
  std::size_t max_out = 0, sum_out = 0, n_act = 0;
  for (std::size_t r = 0; r < n_rep; ++r) {
    if (!active_[r]) continue;
    const std::size_t o = replicas_[r]->session.outstanding_prompt_tokens();
    max_out = std::max(max_out, o);
    sum_out += o;
    ++n_act;
  }
  const double mean_out =
      static_cast<double>(sum_out) / static_cast<double>(n_act);
  imbalance_sum_ += static_cast<double>(max_out) / mean_out;
  ++imbalance_samples_;
  return target;
}

bool ReplicaFleet::any_work() const {
  for (const auto& r : replicas_)
    if (r->session.has_work()) return true;
  return false;
}

std::size_t ReplicaFleet::earliest_busy() const {
  const std::size_t n_rep = replicas_.size();
  std::size_t best = n_rep;
  for (std::size_t r = 0; r < n_rep; ++r) {
    if (!replicas_[r]->session.has_work()) continue;
    if (best == n_rep ||
        replicas_[r]->session.now() < replicas_[best]->session.now())
      best = r;
  }
  return best;
}

double ReplicaFleet::frontier(double now) const {
  const std::size_t busy = earliest_busy();
  if (busy < replicas_.size())
    return std::max(now, replicas_[busy]->session.now());
  for (const auto& r : replicas_) now = std::max(now, r->session.now());
  return now;
}

ReplicaFleet::StepResult ReplicaFleet::step() {
  StepResult out;
  out.replica = earliest_busy();
  llm::EngineSession::StepEvents ev = replicas_[out.replica]->session.step();
  out.completed = std::move(ev.completed);
  out.preempted = ev.preempted;
  return out;
}

std::vector<ReplicaMetrics> ReplicaFleet::replica_metrics() const {
  std::vector<ReplicaMetrics> out = counters_;
  for (std::size_t r = 0; r < replicas_.size(); ++r)
    out[r].engine = replicas_[r]->session.metrics();
  return out;
}

double ReplicaFleet::load_imbalance() const {
  return imbalance_samples_
             ? imbalance_sum_ / static_cast<double>(imbalance_samples_)
             : 1.0;
}

void ReplicaFleet::set_trace(obs::TraceSink* sink) {
  trace_ = sink;
  for (std::size_t r = 0; r < replicas_.size(); ++r)
    replicas_[r]->session.set_trace(sink, static_cast<std::uint32_t>(r));
}

void ReplicaFleet::sample_gauges(obs::TimeSeries& ts, double now) const {
  for (std::size_t r = 0; r < replicas_.size(); ++r)
    ts.append(now, static_cast<std::uint32_t>(r),
              replicas_[r]->session.gauges());
}

}  // namespace llmq::serve
