#include "serve/fleet.hpp"

#include <algorithm>
#include <stdexcept>

#include "llm/cost_model.hpp"

namespace llmq::serve {

void FleetConfig::scale_kv_pool(double fraction) {
  engine.kv_pool_blocks_override =
      llm::scaled_kv_pool_blocks(model, gpu, engine.block_size, fraction);
}

llm::EngineMetrics aggregate_replica_engines(
    const std::vector<ReplicaMetrics>& replicas) {
  llm::EngineMetrics agg;
  for (const ReplicaMetrics& r : replicas) {
    const llm::EngineMetrics& m = r.engine;
    agg.total_seconds = std::max(agg.total_seconds, m.total_seconds);
    agg.prefill_seconds += m.prefill_seconds;
    agg.decode_seconds += m.decode_seconds;
    agg.prompt_tokens += m.prompt_tokens;
    agg.cached_prompt_tokens += m.cached_prompt_tokens;
    agg.computed_prompt_tokens += m.computed_prompt_tokens;
    agg.output_tokens += m.output_tokens;
    agg.decode_steps += m.decode_steps;
    agg.sum_batch_size += m.sum_batch_size;
    agg.peak_batch_size = std::max(agg.peak_batch_size, m.peak_batch_size);
    agg.preemptions += m.preemptions;
    agg.recompute_prefill_tokens += m.recompute_prefill_tokens;
    agg.recompute_prefill_seconds += m.recompute_prefill_seconds;
    agg.prefill_chunks += m.prefill_chunks;
    agg.chunked_prefill_tokens += m.chunked_prefill_tokens;
    agg.max_decode_stall_seconds =
        std::max(agg.max_decode_stall_seconds, m.max_decode_stall_seconds);
    agg.cache += m.cache;
  }
  return agg;
}

ReplicaFleet::ReplicaFleet(const FleetConfig& config)
    : router_(config.router,
              config.n_replicas ? config.n_replicas : 1) {
  if (config.n_replicas == 0)
    throw std::invalid_argument("ReplicaFleet: n_replicas must be positive");
  replicas_.reserve(config.n_replicas);
  for (std::size_t r = 0; r < config.n_replicas; ++r)
    replicas_.push_back(std::make_unique<Replica>(config));
  counters_.resize(config.n_replicas);
}

std::size_t ReplicaFleet::dispatch(llm::Request req, std::uint32_t tenant,
                                   double now) {
  const std::size_t n_rep = replicas_.size();
  views_.resize(n_rep);  // member buffer: dispatch is the per-request hot path
  for (std::size_t r = 0; r < n_rep; ++r) {
    views_[r].cache = &replicas_[r]->session.cache();
    views_[r].outstanding_prompt_tokens =
        replicas_[r]->session.outstanding_prompt_tokens();
  }
  const std::size_t target = router_.route(req.prompt, tenant, views_);
  Replica& rep = *replicas_[target];
  if (trace_) {
    // Re-probe the winner with the const, side-effect-free peek() —
    // traced runs must stay bit-identical to untraced ones.
    trace_->emit({obs::EventKind::RouteDecision,
                  static_cast<std::uint8_t>(req.priority), obs::kGlobalTrack,
                  now, req.id, target,
                  views_[target].cache->peek(req.prompt),
                  views_[target].outstanding_prompt_tokens});
  }
  // An idle replica has been parked at its last activity; bring it to the
  // dispatch instant so admission cannot happen in the past.
  if (!rep.session.has_work()) rep.session.advance_to(now);

  counters_[target].routed_prompt_tokens += req.prompt.size();
  ++counters_[target].requests;
  rep.session.submit(std::move(req));

  // Outstanding-load imbalance, sampled after every routing decision.
  std::size_t max_out = 0, sum_out = 0;
  for (std::size_t r = 0; r < n_rep; ++r) {
    const std::size_t o = replicas_[r]->session.outstanding_prompt_tokens();
    max_out = std::max(max_out, o);
    sum_out += o;
  }
  const double mean_out =
      static_cast<double>(sum_out) / static_cast<double>(n_rep);
  imbalance_sum_ += static_cast<double>(max_out) / mean_out;
  ++imbalance_samples_;
  return target;
}

bool ReplicaFleet::any_work() const {
  for (const auto& r : replicas_)
    if (r->session.has_work()) return true;
  return false;
}

std::size_t ReplicaFleet::earliest_busy() const {
  const std::size_t n_rep = replicas_.size();
  std::size_t best = n_rep;
  for (std::size_t r = 0; r < n_rep; ++r) {
    if (!replicas_[r]->session.has_work()) continue;
    if (best == n_rep ||
        replicas_[r]->session.now() < replicas_[best]->session.now())
      best = r;
  }
  return best;
}

double ReplicaFleet::frontier(double now) const {
  const std::size_t busy = earliest_busy();
  if (busy < replicas_.size())
    return std::max(now, replicas_[busy]->session.now());
  for (const auto& r : replicas_) now = std::max(now, r->session.now());
  return now;
}

ReplicaFleet::StepResult ReplicaFleet::step() {
  StepResult out;
  out.replica = earliest_busy();
  llm::EngineSession::StepEvents ev = replicas_[out.replica]->session.step();
  out.completed = std::move(ev.completed);
  out.preempted = ev.preempted;
  return out;
}

std::vector<ReplicaMetrics> ReplicaFleet::replica_metrics() const {
  std::vector<ReplicaMetrics> out = counters_;
  for (std::size_t r = 0; r < replicas_.size(); ++r)
    out[r].engine = replicas_[r]->session.metrics();
  return out;
}

double ReplicaFleet::load_imbalance() const {
  return imbalance_samples_
             ? imbalance_sum_ / static_cast<double>(imbalance_samples_)
             : 1.0;
}

void ReplicaFleet::set_trace(obs::TraceSink* sink) {
  trace_ = sink;
  for (std::size_t r = 0; r < replicas_.size(); ++r)
    replicas_[r]->session.set_trace(sink, static_cast<std::uint32_t>(r));
}

void ReplicaFleet::sample_gauges(obs::TimeSeries& ts, double now) const {
  for (std::size_t r = 0; r < replicas_.size(); ++r)
    ts.append(now, static_cast<std::uint32_t>(r),
              replicas_[r]->session.gauges());
}

}  // namespace llmq::serve
