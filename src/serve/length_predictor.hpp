#pragma once
// Per-tenant running output-length prediction.
//
// Generation length is unknown at admission time, yet it is the single
// biggest lever on queueing delay: a 4-token interactive reply stuck
// behind a 512-token batch summary pays the whole decode. Real systems
// (vLLM's seq-length heuristics, learned proxies in S3/PiA) predict the
// output length and schedule shortest-predicted-job-first. We keep the
// predictor honest and cheap: an exponentially-weighted running mean of
// observed output lengths per tenant, plus an EWMA of the absolute error
// so a `mispredict_penalty` knob can pad unreliable tenants — penalty 0
// schedules on the raw mean, higher penalties are increasingly
// conservative (monotone in the knob, since the observations themselves
// never depend on it).
//
// Determinism contract: observe() is called by the drivers in oracle
// completion order (the bit-pinned merge order shared by the virtual
// clock, replicated, and threaded runtimes), so predictor state — and
// therefore every SPJF decision — is identical across all three.

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace llmq::serve {

struct LengthPredictorOptions {
  bool enabled = false;
  /// Weight of the newest observation in the running mean/error.
  double ewma_alpha = 0.25;
  /// Pad predictions by this many mean-absolute-errors. 0 = raw mean.
  double mispredict_penalty = 0.0;
  /// Prediction for a tenant with no observations yet.
  double initial_estimate = 8.0;
};

class LengthPredictor {
 public:
  explicit LengthPredictor(LengthPredictorOptions opt = {}) : opt_(opt) {}

  bool enabled() const { return opt_.enabled; }
  const LengthPredictorOptions& options() const { return opt_; }

  /// Record a finished request's actual output length.
  void observe(std::uint32_t tenant, std::size_t output_tokens);

  /// mean + penalty * mean_abs_err, floored at 1 token. Monotone
  /// non-decreasing in mispredict_penalty for a fixed observation
  /// sequence.
  double predict(std::uint32_t tenant) const;

  /// Integer prediction for Request::predicted_output_tokens. 0 when the
  /// predictor is disabled — the engine and scheduler treat 0 as "no
  /// prediction" and fall back to exact FIFO order.
  std::size_t predict_tokens(std::uint32_t tenant) const;

  std::size_t observations(std::uint32_t tenant) const;

 private:
  struct State {
    double mean = 0.0;
    double abs_err = 0.0;
    std::size_t n = 0;
  };
  LengthPredictorOptions opt_;
  std::unordered_map<std::uint32_t, State> per_tenant_;
};

}  // namespace llmq::serve
