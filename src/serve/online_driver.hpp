#pragma once
// Shared internals of the online serving drivers.
//
// run_online (the single-threaded virtual-clock oracle, online.cpp) and
// run_online_threaded (the real-threads runtime, threaded_fleet.cpp) are
// two execution engines for the same serving semantics; everything that
// defines those semantics outside the event loop — arrival validation,
// per-tenant prompt encoding, request materialization, completion
// stitching, and result finalization — lives here so the two drivers
// cannot drift apart. Internal to src/serve; not part of the public API.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "serve/online.hpp"

namespace llmq::serve::detail {

/// Bookkeeping for a dispatched, not-yet-finished request.
struct InFlight {
  Arrival arrival;
  double dispatch_time = 0.0;
  std::size_t replica = 0;
};

/// Validate the stream (time-sorted, unique ids, rows in range) and build
/// id -> arrival index (for the emitted Ordering over the arrival table).
std::unordered_map<std::uint64_t, std::size_t> index_arrivals(
    const table::Table& t, const std::vector<Arrival>& arrivals);

/// Per-tenant prompt encoders, built lazily: each tenant's instruction
/// prefix differs, so rows share the instruction prefix only within a
/// tenant — the structure that makes Tenant-GGR partitioning (and
/// tenant-affine routing) matter.
class EncoderMap {
 public:
  explicit EncoderMap(const query::PromptTemplate& base) : base_(base) {}

  query::PromptEncoder& for_tenant(std::uint32_t tenant) {
    auto it = encoders_.find(tenant);
    if (it == encoders_.end()) {
      query::PromptTemplate tmpl = base_;
      tmpl.system_prompt += " [tenant " + std::to_string(tenant) + "]";
      it = encoders_.emplace(tenant, query::PromptEncoder(std::move(tmpl)))
               .first;
    }
    return it->second;
  }

 private:
  query::PromptTemplate base_;
  std::unordered_map<std::uint32_t, query::PromptEncoder> encoders_;
};

/// Materialize the engine request for an arrival: id/row tagging, the
/// priority class, and the task model's per-request decode length (keyed
/// so the same arrival always gets the same length, scaled by the class
/// output multiplier).
llm::Request make_request(const Arrival& a, tokenizer::TokenSeq prompt,
                          const llm::TaskModel& task_model,
                          const OnlineConfig& config);

/// Join an engine completion with its dispatch bookkeeping.
ServedRequest stitch(const llm::RequestResult& res, const InFlight& f);

void count_tenant(std::vector<std::size_t>& per_tenant, std::uint32_t tenant);

/// Latency/per-class summaries, the emitted Ordering, and PHC over the
/// arrival-ordered rows — identical across drivers by construction.
void finalize_emitted(OnlineRunResult& out, const table::Table& t,
                      const std::vector<Arrival>& arrivals,
                      const OnlineConfig& config,
                      std::vector<std::size_t> emitted_rows,
                      std::vector<std::vector<std::size_t>> emitted_fields);

}  // namespace llmq::serve::detail
