#pragma once
// Shared internals of the online serving drivers.
//
// run_online (the single-threaded virtual-clock oracle, online.cpp) and
// run_online_threaded (the real-threads runtime, threaded_fleet.cpp) are
// two execution engines for the same serving semantics; everything that
// defines those semantics outside the event loop — arrival validation,
// per-tenant prompt encoding, request materialization, completion
// stitching, and result finalization — lives here so the two drivers
// cannot drift apart. Internal to src/serve; not part of the public API.

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "serve/online.hpp"

namespace llmq::serve::detail {

/// Bookkeeping for a dispatched, not-yet-finished request.
struct InFlight {
  Arrival arrival;
  double dispatch_time = 0.0;
  std::size_t replica = 0;
};

/// Validate the stream (time-sorted, unique ids, rows in range) and build
/// id -> arrival index (for the emitted Ordering over the arrival table).
std::unordered_map<std::uint64_t, std::size_t> index_arrivals(
    const table::Table& t, const std::vector<Arrival>& arrivals);

/// When config.sessions is set, the arrivals handed to the driver must be
/// exactly sessions->roots (same ids, same session tags, in order) — the
/// follow-up planner indexes plans by root position. Throws
/// std::invalid_argument on any mismatch; no-op when sessions is null.
void validate_sessions(const OnlineConfig& config,
                       const std::vector<Arrival>& arrivals);

/// Merged arrival source: the static time-sorted stream plus feedback
/// arrivals (session follow-up turns) injected mid-run. Pop order is
/// (time, id) across both sources — deterministic because feedback ids
/// are allocated in oracle completion order, which every driver
/// reproduces bit-identically.
class ArrivalFeed {
 public:
  explicit ArrivalFeed(const std::vector<Arrival>& statics)
      : statics_(&statics) {}

  bool exhausted() const { return next_ >= statics_->size() && heap_.empty(); }

  /// Index of the next unfed static arrival (== size when drained) — the
  /// threaded runtime's static-stream lookaheads key off this.
  std::size_t next_static() const { return next_; }

  /// Time of the next arrival from either source; +infinity when drained.
  double next_time() const;

  /// Remove and return the (time, id)-least pending arrival. Precondition:
  /// !exhausted().
  Arrival pop();

  /// Inject a feedback arrival. Its time may be anywhere at or after the
  /// current feed position; the heap merges it into (time, id) order.
  void push_feedback(const Arrival& a);

 private:
  const std::vector<Arrival>* statics_;
  std::size_t next_ = 0;
  std::vector<Arrival> heap_;  // min-heap on (time, id)
};

/// Session follow-up engine, shared verbatim by all three drivers so the
/// feedback stream they spawn is identical. Lifecycle per spawning
/// arrival: on_dispatch (remember the parent's prompt + register its
/// think-time gap) -> on_complete (materialize the child arrival at
/// finish + gap and precompute its prompt prefix = parent prompt +
/// synthetic output) -> make_child_prompt at the child's own dispatch
/// (prefix + segment label + the follow-up row rendered with the child's
/// planned field order). Inactive (null sessions) trackers no-op.
class SessionTracker {
 public:
  explicit SessionTracker(const SessionWorkload* sessions)
      : sessions_(sessions),
        next_id_(sessions != nullptr ? sessions->roots.size() : 0) {}

  bool active() const { return sessions_ != nullptr; }

  /// Will this arrival spawn a follow-up turn when it completes?
  bool will_spawn(const Arrival& a) const {
    return sessions_ != nullptr && a.session != kNoSession &&
           a.turn < sessions_->plans[a.session].follow_ups.size();
  }

  void on_dispatch(const Arrival& a, const tokenizer::TokenSeq& prompt);

  /// The follow-up arrival spawned by this completion (nullopt when the
  /// session is exhausted or inactive). Call once per completion, in
  /// oracle completion order — child ids are allocated sequentially here.
  std::optional<Arrival> on_complete(const Arrival& a,
                                     const llm::RequestResult& res);

  /// Materialize a follow-up turn's full prompt (consumes the stored
  /// prefix; call exactly once per spawned child, at its dispatch).
  tokenizer::TokenSeq make_child_prompt(const Arrival& a,
                                        const table::Table& t,
                                        std::span<const std::size_t> fo);

  /// Smallest finish->arrival gap among dispatched-but-unfinished
  /// spawning requests; +infinity when none. The threaded runtime caps
  /// every epoch at frontier + this so a turn born mid-epoch matures
  /// strictly after the barrier (the feedback-arrival clock rule,
  /// DESIGN.md §12) — keeping the epoch cut set a superset of all
  /// observable due-times.
  double min_inflight_gap() const;

 private:
  struct SpawnCtx {
    tokenizer::TokenSeq prompt;  // the parent's prompt, verbatim
    double gap = 0.0;
  };

  const SessionWorkload* sessions_;
  std::uint64_t next_id_ = 0;
  std::unordered_map<std::uint64_t, SpawnCtx> ctx_;  // by parent id
  /// Child id -> parent prompt + synthetic parent output: the token-exact
  /// prefix contract the session property tests (and audit_trace) pin.
  std::unordered_map<std::uint64_t, tokenizer::TokenSeq> child_prefix_;
  std::multiset<double> gaps_;  // in-flight spawners' gaps
};

/// Per-tenant prompt encoders, built lazily: each tenant's instruction
/// prefix differs, so rows share the instruction prefix only within a
/// tenant — the structure that makes Tenant-GGR partitioning (and
/// tenant-affine routing) matter.
class EncoderMap {
 public:
  explicit EncoderMap(const query::PromptTemplate& base) : base_(base) {}

  query::PromptEncoder& for_tenant(std::uint32_t tenant) {
    auto it = encoders_.find(tenant);
    if (it == encoders_.end()) {
      query::PromptTemplate tmpl = base_;
      tmpl.system_prompt += " [tenant " + std::to_string(tenant) + "]";
      it = encoders_.emplace(tenant, query::PromptEncoder(std::move(tmpl)))
               .first;
    }
    return it->second;
  }

 private:
  query::PromptTemplate base_;
  std::unordered_map<std::uint32_t, query::PromptEncoder> encoders_;
};

/// Materialize the engine request for an arrival: id/row tagging, the
/// priority class, and the task model's per-request decode length (keyed
/// so the same arrival always gets the same length, scaled by the class
/// and per-tenant output multipliers). A non-null enabled predictor
/// stamps predicted_output_tokens (0 otherwise = no prediction).
llm::Request make_request(const Arrival& a, tokenizer::TokenSeq prompt,
                          const llm::TaskModel& task_model,
                          const OnlineConfig& config,
                          const LengthPredictor* predictor);

/// Join an engine completion with its dispatch bookkeeping.
ServedRequest stitch(const llm::RequestResult& res, const InFlight& f);

void count_tenant(std::vector<std::size_t>& per_tenant, std::uint32_t tenant);

/// Latency/per-class summaries, the emitted Ordering, and PHC over the
/// arrival-ordered rows — identical across drivers by construction.
void finalize_emitted(OnlineRunResult& out, const table::Table& t,
                      const std::vector<Arrival>& arrivals,
                      const OnlineConfig& config,
                      std::vector<std::size_t> emitted_rows,
                      std::vector<std::vector<std::size_t>> emitted_fields);

}  // namespace llmq::serve::detail
