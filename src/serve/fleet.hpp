#pragma once
// Replica fleet: N independent engine+cache replicas behind one router,
// stepped on a merged virtual clock.
//
// Extracted from the run_online_replicated event loop so that two drivers
// share one replicated execution core:
//
//   * the arrival-stream loop (online.cpp): scheduler windows dispatch
//     requests into the fleet;
//   * the query-serving client (query_client.hpp): concurrent relational
//     queries submit their per-row invocations into the same fleet.
//
// The fleet owns routing, per-replica submission, the merged-clock frontier
// rule, per-replica attribution counters, elasticity (watermark-driven
// scale-up/down with warm-spawn prefix migration — see ElasticityConfig),
// and the outstanding-load
// imbalance sampling; drivers own arrival semantics (what to dispatch
// when) and completion bookkeeping. The clock-merge rule is documented in
// online.hpp and DESIGN.md §3.1 and is unchanged by the extraction — the
// n_replicas == 1 bit-exact equivalence test in tests/router/ still pins
// it.

#include <cstdint>
#include <memory>
#include <vector>

#include "llm/engine.hpp"
#include "llm/engine_session.hpp"
#include "serve/router.hpp"

namespace llmq::serve {

/// Elastic fleet sizing (DESIGN.md §13): the fleet pre-constructs
/// `max_replicas` replicas but only the first n_replicas start active.
/// Load watermarks — mean outstanding prompt tokens per serving replica,
/// evaluated at every dispatch — drive scale decisions:
///
///   * mean > high watermark: activate the lowest-index parked replica.
///     With migrate_max_blocks > 0 the spawn is WARM: the most-loaded
///     serving peer donates its hottest root-down prefixes
///     (PrefixCache::begin_migration), the transfer is priced like a
///     host-tier link (CostModel::promote_seconds), and only when it
///     lands does the recipient admit the prefixes (admit_migrated) and
///     the donor release its transfer pins (end_migration) — so donor
///     eviction of in-flight blocks is deferred and nothing is
///     double-counted as a prefix hit.
///   * mean < low watermark (and more than min_replicas serving): the
///     highest-index serving replica starts DRAINING — it finishes its
///     in-flight work but every router policy steers new requests around
///     it; once idle it parks (leaves the active set, cache kept warm).
///
/// All decisions happen at dispatch points as a pure function of fleet
/// state and the merged clock, so the virtual-clock and threaded drivers
/// scale bit-identically. Disabled (the default) leaves every code path
/// byte-for-byte the fixed-size fleet.
struct ElasticityConfig {
  bool enabled = false;
  /// Scale-down floor: never drain below this many serving replicas.
  std::size_t min_replicas = 1;
  /// Replica ceiling (pre-constructed); 0 = n_replicas (no headroom).
  std::size_t max_replicas = 0;
  /// Scale up when mean outstanding prompt tokens per serving replica
  /// exceeds this. 0 disables scale-up.
  std::size_t high_watermark_tokens = 0;
  /// Scale down when the mean falls below this. 0 disables scale-down.
  std::size_t low_watermark_tokens = 0;
  /// Hot-prefix budget migrated into a newly activated replica from the
  /// most-loaded peer. 0 = cold spawns.
  std::size_t migrate_max_blocks = 0;
  /// Minimum virtual seconds between scale decisions (completed
  /// migrations and drain-parking are not decisions and never wait).
  double cooldown_seconds = 0.0;

  /// Total replicas a fleet constructs for `n_replicas` initial actives.
  std::size_t ceiling(std::size_t n_replicas) const {
    const std::size_t cap = max_replicas ? max_replicas : n_replicas;
    return cap > n_replicas ? cap : n_replicas;
  }
};

/// One replica's configuration is `engine` + `model` + `gpu`; n_replicas
/// scales the fleet (use scale_kv_pool to divide a fixed total budget).
struct FleetConfig {
  llm::EngineConfig engine;
  llm::ModelSpec model = llm::llama3_8b();
  llm::GpuSpec gpu = llm::l4();
  std::size_t n_replicas = 1;
  RouterPolicy router = RouterPolicy::PrefixAffinity;
  ElasticityConfig elasticity;

  /// Shrink each replica's KV pool to `fraction` of the GPU-derived
  /// capacity (same scaling contract as query::ExecConfig::scale_kv_pool).
  void scale_kv_pool(double fraction);
};

/// One replica's slice of a fleet run.
struct ReplicaMetrics {
  std::size_t requests = 0;                // requests routed here
  std::uint64_t routed_prompt_tokens = 0;  // prompt tokens routed here
  llm::EngineMetrics engine;               // this replica's engine + cache

  double hit_rate() const { return engine.prompt_cache_hit_rate(); }
};

/// Fleet-wide engine metrics: token/time counters sum across replicas;
/// total_seconds and peak_batch_size are maxima (replicas run in
/// parallel). For one replica this is that replica's metrics unchanged.
llm::EngineMetrics aggregate_replica_engines(
    const std::vector<ReplicaMetrics>& replicas);

class ReplicaFleet {
 public:
  /// Throws std::invalid_argument when config.n_replicas == 0.
  explicit ReplicaFleet(const FleetConfig& config);

  std::size_t n_replicas() const { return replicas_.size(); }

  /// Route `req` and submit it to the chosen replica: builds the router's
  /// read-only views, brings an idle target's clock to `now` (admission
  /// cannot happen in the past), submits, and samples the
  /// outstanding-load imbalance. Returns the chosen replica.
  std::size_t dispatch(llm::Request req, std::uint32_t tenant, double now);

  bool any_work() const;

  /// Busy replica with the earliest clock; n_replicas() when all idle.
  std::size_t earliest_busy() const;

  /// Merged-clock frontier rule applied to a driver clock `now`: the
  /// earliest busy replica clock while anything runs, the furthest
  /// replica clock when all are idle; never moves `now` backwards.
  double frontier(double now) const;

  struct StepResult {
    std::size_t replica = 0;
    /// Automatic priority preemptions this step performed (victims are
    /// re-queued inside the replica session — they surface again through
    /// `completed` when they eventually finish).
    std::size_t preempted = 0;
    std::vector<llm::RequestResult> completed;
  };
  /// Step the busy replica with the earliest clock (one admission round +
  /// one decode step). Precondition: any_work().
  StepResult step();

  /// Per-replica attribution with each replica's final engine metrics.
  std::vector<ReplicaMetrics> replica_metrics() const;

  /// Mean over routing decisions of max/mean outstanding prompt tokens
  /// (1.0 = perfectly balanced at every decision; 1.0 when no decisions).
  double load_imbalance() const;

  /// Read-only replica session access (clock and cache probes in tests).
  const llm::EngineSession& session(std::size_t r) const {
    return replicas_[r]->session;
  }

  /// Elasticity observers (constant under a disabled ElasticityConfig:
  /// every replica active, none draining, nothing pending).
  std::size_t active_replicas() const;
  bool replica_active(std::size_t r) const { return active_[r] != 0; }
  bool replica_draining(std::size_t r) const { return draining_[r] != 0; }
  std::size_t pending_migrations() const { return pending_.size(); }

  /// Bind an event sink: each replica session (and its cache) emits on
  /// track r; dispatch() additionally emits a RouteDecision per request
  /// on the global track (the merged driver clock can be ahead of a busy
  /// replica's clock, so routing events must not claim a replica track).
  void set_trace(obs::TraceSink* sink);

  /// Append one gauge row per replica at merged time `now` (time-series
  /// sampling; see obs/timeseries.hpp).
  void sample_gauges(obs::TimeSeries& ts, double now) const;

 private:
  struct Replica {
    llm::ServingEngine engine;
    cache::PrefixCache cache;
    llm::EngineSession session;

    explicit Replica(const FleetConfig& config)
        : engine(llm::CostModel(config.model, config.gpu), config.engine),
          cache(engine.make_session_cache()),
          session(engine, cache) {}
  };

  /// One in-flight warm-spawn transfer: the donor's batch (its leases pin
  /// the donor blocks until the transfer lands) and the virtual landing
  /// time, priced over the inter-replica link.
  struct PendingMigration {
    std::size_t donor = 0;
    std::size_t recipient = 0;
    cache::PrefixCache::MigrationBatch batch;
    double land_time = 0.0;
  };

  /// Dispatch-point elasticity hook: lands due migrations, parks idle
  /// draining replicas, then applies at most one watermark decision.
  void maybe_scale(double now);
  void complete_migrations(double now);

  std::vector<std::unique_ptr<Replica>> replicas_;
  Router router_;
  obs::TraceSink* trace_ = nullptr;
  std::vector<ReplicaMetrics> counters_;  // engine filled by replica_metrics
  std::vector<Router::ReplicaView> views_;  // reused per-dispatch buffer
  ElasticityConfig elastic_;
  std::size_t block_size_ = 16;
  std::vector<char> active_;
  std::vector<char> draining_;
  std::vector<PendingMigration> pending_;
  double last_scale_ = -1.0e300;  // cooldown anchor
  double imbalance_sum_ = 0.0;
  std::size_t imbalance_samples_ = 0;
};

}  // namespace llmq::serve
