#include "serve/scheduler.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace llmq::serve {

std::string to_string(Policy p) {
  switch (p) {
    case Policy::Fifo: return "FIFO";
    case Policy::WindowedGgr: return "Windowed-GGR";
    case Policy::TenantGgr: return "Tenant-GGR";
  }
  return "?";
}

std::optional<Policy> policy_from_string(const std::string& name) {
  if (name == "fifo" || name == "FIFO") return Policy::Fifo;
  if (name == "ggr" || name == "windowed-ggr") return Policy::WindowedGgr;
  if (name == "tenant-ggr" || name == "tenant") return Policy::TenantGgr;
  return std::nullopt;
}

OnlineScheduler::OnlineScheduler(const table::Table& t,
                                 const table::FdSet& fds,
                                 SchedulerOptions options)
    : table_(t), fds_(fds), opt_(std::move(options)) {
  // With no row bound and no wait deadline, ready() can never fire and the
  // whole stream silently degrades into one end-of-stream flush batch.
  // That configuration is always a bug; reject it up front.
  if (opt_.window_rows == 0 && opt_.max_wait_seconds <= 0.0)
    throw std::invalid_argument(
        "OnlineScheduler: window_rows == 0 with max_wait_seconds <= 0 would "
        "never dispatch; set a row bound or a wait deadline");
}

void OnlineScheduler::push(const Arrival& a) { buffer_.push_back(a); }

double OnlineScheduler::next_deadline() const {
  if (buffer_.empty() || opt_.max_wait_seconds <= 0.0)
    return std::numeric_limits<double>::infinity();
  return buffer_.front().time + opt_.max_wait_seconds;
}

bool OnlineScheduler::ready(double now) const {
  if (opt_.window_rows > 0 && buffer_.size() >= opt_.window_rows) return true;
  return now >= next_deadline();
}

std::optional<Window> OnlineScheduler::pop_ready(double now) {
  if (!ready(now)) return std::nullopt;
  const bool full = opt_.window_rows > 0 && buffer_.size() >= opt_.window_rows;
  // Row-bound windows take exactly window_rows (the rest keeps buffering);
  // a deadline flush empties the buffer — everything in it is equally due.
  const std::size_t take = full ? opt_.window_rows : buffer_.size();
  std::vector<Arrival> batch(buffer_.begin(),
                             buffer_.begin() + static_cast<long>(take));
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(take));
  Window w = plan_window(std::move(batch), now);
  trace_window(w);
  return w;
}

std::optional<Window> OnlineScheduler::flush(double now) {
  if (buffer_.empty()) return std::nullopt;
  std::vector<Arrival> batch(buffer_.begin(), buffer_.end());
  buffer_.clear();
  Window w = plan_window(std::move(batch), now);
  trace_window(w);
  return w;
}

Window OnlineScheduler::plan_window(std::vector<Arrival> batch,
                                    double now) const {
  Window w;
  w.planned_at = now;
  w.arrivals.reserve(batch.size());
  w.field_orders.reserve(batch.size());
  if (!opt_.priority_order) {
    plan_into(w, std::move(batch));
    return w;
  }
  // Strict-priority emission: stable-partition by effective class at plan
  // time (aging promotes overdue arrivals), plan each class with the
  // configured policy, emit Interactive first. Reordering happens only
  // within a class, so the per-class FIFO order — which the engine's
  // tie-breaking relies on for the aging guarantee — is preserved. One
  // pass over the batch: each arrival's effective class is computed
  // exactly once, not once per candidate class.
  std::array<std::vector<Arrival>, llm::kNumPriorityClasses> parts;
  for (const Arrival& a : batch) {
    const auto c = static_cast<std::size_t>(
        llm::aged_class(a.priority, now - a.time, opt_.aging_seconds));
    parts[c].push_back(a);
  }
  for (auto& part : parts)
    if (!part.empty()) plan_into(w, std::move(part));
  return w;
}

void OnlineScheduler::plan_into(Window& w, std::vector<Arrival> batch) const {
  if (opt_.spjf && predictor_ != nullptr && predictor_->enabled()) {
    // Stable: equal predictions (in particular, same-tenant runs) keep
    // their arrival order, so SPJF never inverts FIFO gratuitously.
    std::stable_sort(batch.begin(), batch.end(),
                     [this](const Arrival& x, const Arrival& y) {
                       return predictor_->predict(x.tenant) <
                              predictor_->predict(y.tenant);
                     });
  }
  const std::size_t m = table_.num_cols();
  std::vector<std::size_t> schema_order(m);
  std::iota(schema_order.begin(), schema_order.end(), 0);

  switch (opt_.policy) {
    case Policy::Fifo: {
      for (const Arrival& a : batch) {
        w.arrivals.push_back(a);
        w.field_orders.push_back(schema_order);
      }
      break;
    }
    case Policy::WindowedGgr: {
      std::vector<std::size_t> rows;
      rows.reserve(batch.size());
      for (const auto& a : batch) rows.push_back(a.row);
      const table::Table sub = table_.take_rows(rows);
      const core::GgrResult res = core::ggr(sub, fds_, opt_.ggr);
      w.solve_seconds += res.solve_seconds;
      for (std::size_t pos = 0; pos < res.ordering.num_rows(); ++pos) {
        w.arrivals.push_back(batch[res.ordering.row_at(pos)]);
        w.field_orders.push_back(res.ordering.fields_at(pos));
      }
      break;
    }
    case Policy::TenantGgr: {
      // Partition by tenant in first-arrival order, GGR each partition.
      std::vector<std::uint32_t> tenant_order;
      std::unordered_map<std::uint32_t, std::vector<std::size_t>> groups;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        auto [it, inserted] = groups.try_emplace(batch[i].tenant);
        if (inserted) tenant_order.push_back(batch[i].tenant);
        it->second.push_back(i);
      }
      for (std::uint32_t tenant : tenant_order) {
        const std::vector<std::size_t>& idx = groups[tenant];
        std::vector<std::size_t> rows;
        rows.reserve(idx.size());
        for (std::size_t i : idx) rows.push_back(batch[i].row);
        const table::Table sub = table_.take_rows(rows);
        const core::GgrResult res = core::ggr(sub, fds_, opt_.ggr);
        w.solve_seconds += res.solve_seconds;
        for (std::size_t pos = 0; pos < res.ordering.num_rows(); ++pos) {
          w.arrivals.push_back(batch[idx[res.ordering.row_at(pos)]]);
          w.field_orders.push_back(res.ordering.fields_at(pos));
        }
      }
      break;
    }
  }
}

}  // namespace llmq::serve
