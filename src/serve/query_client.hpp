#pragma once
// Query-over-serving: relational LLM queries executed through the shared
// online replica fleet instead of a private per-stage engine.
//
// PRs 1–2 built an online serving stack — windowed scheduler, replica
// router, merged virtual clock — while the query executor kept spinning
// up a private offline ServingEngine per stage. This header bridges the
// layers: a QueryClient fronts one ReplicaFleet shared by N concurrent
// queries; each query opens a QuerySession (its *lane*, whose index is
// the tenant tag the router sees) and submits its per-row LLM invocations
// as timestamped requests. The client drives the merged event loop and
// delivers completions through per-request callbacks over the virtual
// clock — the stage collects its answers keyed by row id, so completion
// order cannot change query results (the order-independence property
// tests/serve/ pins: one query served here returns per-row answers
// identical to the offline run_stage path).
//
// Exact-duplicate memo (paper's dedup observation: relational workloads
// repeat whole invocations, not just prefixes): two requests with
// identical prompt tokens and output length are the same simulated
// computation, so the client executes only the first (the *leader*) and
// fans its completion out to every duplicate — across rows of one query
// and across queries. Memo accounting (DedupStats) is strictly separate
// from prefix-hit accounting: a fanned-out completion never touches a
// replica cache, so PHR keeps meaning "prompt tokens served from KV".

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/benchmark_suite.hpp"
#include "query/executor.hpp"
#include "serve/fleet.hpp"
#include "serve/online.hpp"

namespace llmq::serve {

class QueryClient;

/// One query's lane into the shared fleet. Obtained from
/// QueryClient::open_session(); lives as long as the client.
class QuerySession {
 public:
  using Completion = std::function<void(const ServedRequest&)>;

  /// Submit one invocation at virtual time `time` (clamped forward to the
  /// client's clock; equal times dispatch in submission order).
  /// `req.row_tag` keys the completion back to the caller's row; the
  /// callback (optional) fires inside QueryClient::run() and may submit
  /// further requests — that is how multi-stage queries pipeline.
  void submit(double time, llm::Request req, Completion on_complete = {});

  std::uint32_t lane() const { return lane_; }
  const std::string& label() const { return label_; }
  llm::PriorityClass priority() const { return priority_; }

 private:
  friend class QueryClient;
  QuerySession(QueryClient& client, std::uint32_t lane, std::string label,
               llm::PriorityClass priority)
      : client_(client),
        lane_(lane),
        label_(std::move(label)),
        priority_(priority) {}
  QueryClient& client_;
  std::uint32_t lane_;
  std::string label_;
  llm::PriorityClass priority_;
};

/// QueryClient knobs. A namespace-scope type (not nested) so `= {}`
/// default arguments work while QueryClient is still incomplete.
struct QueryClientOptions {
  double ttft_slo_seconds = 0.0;  // goodput SLO for the latency summary
  bool dedup_exact = true;        // the exact-duplicate memo layer
  /// Observability wiring (event sink + gauge sampler), threaded into the
  /// shared fleet exactly as OnlineConfig::trace is for arrival streams.
  obs::TraceConfig trace;
};

/// Multi-source submission front-end over a ReplicaFleet.
class QueryClient {
 public:
  using Options = QueryClientOptions;

  explicit QueryClient(const FleetConfig& fleet, Options options = {});
  ~QueryClient();
  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Open a lane; the lane index (== the tenant tag used for routing) is
  /// assignment order. `priority` is the scheduling class every
  /// invocation submitted on this lane is served under — the query lane
  /// is the unit that maps onto priority classes (an interactive
  /// dashboard query vs a batch analytics scan), and with
  /// FleetConfig::engine.preemption enabled an interactive lane's rows
  /// may preempt a batch lane's running rows on the shared replicas.
  QuerySession& open_session(
      std::string label,
      llm::PriorityClass priority = llm::PriorityClass::Standard);

  /// Drive the merged event loop until every submitted request has
  /// completed. Completion callbacks run inside and may submit more
  /// requests; those are served before run() returns. Callable
  /// repeatedly — replica caches and the dedup memo stay warm.
  void run();

  /// Current merged virtual clock.
  double now() const { return now_; }

  /// Fleet-level view of everything served so far: completion-ordered
  /// requests, latency, aggregate + per-replica engine metrics, per-query
  /// lanes (per_query), and dedup accounting. `windows` / `solve_seconds`
  /// / `emitted` / `phc` are left empty — the query planner, not a
  /// serving-side scheduler, ordered these requests.
  OnlineRunResult result() const;

  /// One timestamped submission (public so the heap comparator in
  /// query_client.cpp can see it; not part of the caller API).
  struct Submission {
    double time = 0.0;
    std::uint64_t seq = 0;  // submission order; ties on time dispatch FIFO
    std::uint32_t lane = 0;
    llm::Request req;
    QuerySession::Completion done;
  };

 private:
  friend class QuerySession;

  struct MemoEntry;
  struct Meta;  // per-request bookkeeping (see query_client.cpp)

  void process(Submission s);
  void dispatch_to_fleet(Meta meta, llm::Request req);
  void on_engine_complete(const llm::RequestResult& res, std::size_t replica);
  void complete_from_memo(Meta meta, const MemoEntry& entry);
  void record(const ServedRequest& sr, const QuerySession::Completion& done);

  FleetConfig fleet_config_;
  Options options_;
  ReplicaFleet fleet_;
  std::vector<std::unique_ptr<QuerySession>> sessions_;
  std::vector<QueryLaneMetrics> lanes_;

  std::vector<Submission> heap_;  // min-heap on (time, seq)
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 0;  // internal globally-unique request ids
  std::unordered_map<std::uint64_t, std::unique_ptr<Meta>> inflight_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Meta>> waiting_;
  /// Exact-duplicate memo, keyed on the full prompt token bytes + output
  /// length (exact equality, not a hash digest — the memo must never lie).
  /// unordered_map references are stable, so Meta can hold entry pointers.
  std::unordered_map<std::string, MemoEntry> memo_;

  std::vector<ServedRequest> requests_;  // completion order
  DedupStats dedup_;
  double now_ = 0.0;
};

/// One query's admission into a shared serving run.
struct ServedQuerySpec {
  const data::Dataset* dataset = nullptr;
  const data::QuerySpec* query = nullptr;
  /// Planner + task-model configuration for this query. The engine half
  /// (engine/model/gpu) is ignored — execution happens on the shared
  /// fleet.
  query::ExecConfig config;
  /// Scheduling class of this query's lane (see QueryClient::open_session).
  llm::PriorityClass priority = llm::PriorityClass::Standard;
  /// Virtual time the query arrives at the endpoint.
  double start_time = 0.0;
  /// Pacing between consecutive row submissions (0 = the whole stage
  /// lands at start_time). Pacing is what makes concurrent queries
  /// interleave on the fleet rather than queue whole-stage-at-a-time.
  double request_interval = 0.0;
};

struct ServedQueriesResult {
  /// Per-query results, parallel to the input specs. Stage metrics are
  /// attributed from this query's completions only (engine-visible
  /// tokens; memo-served rows counted in StageMetrics::dedup_hits).
  std::vector<query::QueryRunResult> queries;
  /// The shared fleet's view: latency, engine aggregate, per-replica and
  /// per-query attribution, dedup stats.
  OnlineRunResult serving;
};

/// Run N relational queries concurrently through one shared fleet. Each
/// query runs stage 1, applies its relational epilogue, and (multi-LLM)
/// submits stage 2 from inside the event loop — so stage 2 of one query
/// interleaves with other queries' stage 1 on the same replicas.
ServedQueriesResult run_queries_served(
    const std::vector<ServedQuerySpec>& queries, const FleetConfig& fleet,
    QueryClient::Options options = {});

/// A one-replica fleet configured exactly like `config`'s engine half —
/// what the offline path would run on. Adjust n_replicas / router /
/// scale_kv_pool afterwards; this is the parity baseline the
/// served-equals-offline tests are built on.
FleetConfig fleet_from_exec(const query::ExecConfig& config);

}  // namespace llmq::serve
