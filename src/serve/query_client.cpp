#include "serve/query_client.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace llmq::serve {

// ---- Internal bookkeeping types. ----

/// One leader invocation and everyone waiting on it.
struct QueryClient::MemoEntry {
  bool done = false;
  llm::RequestResult leader;          // valid once done
  std::size_t leader_replica = 0;
  std::vector<std::uint64_t> waiters;  // internal ids parked on the leader
};

/// Per-request bookkeeping from submission to completion.
struct QueryClient::Meta {
  std::uint32_t lane = 0;
  std::uint64_t internal_id = 0;
  std::size_t row = 0;             // caller's row_tag
  std::size_t prompt_tokens = 0;
  llm::PriorityClass priority = llm::PriorityClass::Standard;
  double submit_time = 0.0;        // the caller's timestamp (arrival)
  double dispatch_time = 0.0;      // when the client processed it
  std::size_t replica = 0;
  QuerySession::Completion done;
  MemoEntry* entry = nullptr;      // set when this request leads a memo entry
};

namespace {

/// Min-heap comparator on (time, seq): std::push_heap builds a max-heap,
/// so order by greater-than.
struct SubmissionAfter {
  bool operator()(const QueryClient::Submission& a,
                  const QueryClient::Submission& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

std::string memo_key(const tokenizer::TokenSeq& prompt,
                     std::size_t output_tokens) {
  std::string key(reinterpret_cast<const char*>(prompt.data()),
                  prompt.size() * sizeof(tokenizer::TokenId));
  key.push_back(':');
  key += std::to_string(output_tokens);
  return key;
}

}  // namespace

void QuerySession::submit(double time, llm::Request req,
                          Completion on_complete) {
  req.priority = priority_;  // the lane's class, not the caller's field
  client_.heap_.push_back(QueryClient::Submission{
      std::max(time, client_.now_), client_.next_seq_++, lane_,
      std::move(req), std::move(on_complete)});
  std::push_heap(client_.heap_.begin(), client_.heap_.end(),
                 SubmissionAfter{});
}

QueryClient::QueryClient(const FleetConfig& fleet, Options options)
    : fleet_config_(fleet), options_(options), fleet_(fleet) {
  if (options_.trace.sink) fleet_.set_trace(options_.trace.sink);
}

QueryClient::~QueryClient() = default;

QuerySession& QueryClient::open_session(std::string label,
                                        llm::PriorityClass priority) {
  const auto lane = static_cast<std::uint32_t>(sessions_.size());
  sessions_.emplace_back(new QuerySession(*this, lane, label, priority));
  lanes_.emplace_back();
  lanes_.back().label = std::move(label);
  lanes_.back().priority = priority;
  return *sessions_.back();
}

void QueryClient::process(Submission s) {
  auto meta = std::make_unique<Meta>();
  meta->lane = s.lane;
  meta->internal_id = next_id_++;
  meta->row = s.req.row_tag;
  meta->prompt_tokens = s.req.prompt.size();
  meta->priority = s.req.priority;
  meta->submit_time = s.time;
  meta->dispatch_time = now_;
  meta->done = std::move(s.done);

  if (!options_.dedup_exact) {
    dispatch_to_fleet(std::move(*meta), std::move(s.req));
    return;
  }
  const std::string key =
      memo_key(s.req.prompt, std::max<std::size_t>(1, s.req.output_tokens));
  auto [it, fresh] = memo_.try_emplace(key);
  MemoEntry& entry = it->second;
  if (fresh) {
    // Leader: execute on the fleet; completion finalizes the entry.
    meta->entry = &entry;
    dispatch_to_fleet(std::move(*meta), std::move(s.req));
  } else if (!entry.done) {
    // Follower: park until the in-flight leader completes.
    entry.waiters.push_back(meta->internal_id);
    waiting_.emplace(meta->internal_id, std::move(meta));
  } else {
    // Replay: the identical invocation already finished; fan out now.
    complete_from_memo(std::move(*meta), entry);
  }
}

void QueryClient::dispatch_to_fleet(Meta meta, llm::Request req) {
  req.id = meta.internal_id;  // fleet-unique (caller ids are per lane)
  meta.replica = fleet_.dispatch(std::move(req), meta.lane, now_);
  const std::uint64_t id = meta.internal_id;
  inflight_.emplace(id, std::make_unique<Meta>(std::move(meta)));
}

void QueryClient::record(const ServedRequest& sr,
                         const QuerySession::Completion& done) {
  QueryLaneMetrics& lane = lanes_[sr.tenant];
  ++lane.requests;
  if (sr.deduped) {
    ++lane.dedup_hits;
    lane.dedup_saved_prompt_tokens += sr.prompt_tokens;
  } else {
    ++lane.engine_requests;
    lane.prompt_tokens += sr.prompt_tokens;
    lane.cached_prompt_tokens += sr.cached_tokens;
    lane.output_tokens += sr.output_tokens;
  }
  requests_.push_back(sr);
  if (done) done(sr);
}

void QueryClient::on_engine_complete(const llm::RequestResult& res,
                                     std::size_t replica) {
  auto it = inflight_.find(res.id);
  if (it == inflight_.end())
    throw std::logic_error("QueryClient: completion for unknown request");
  std::unique_ptr<Meta> meta = std::move(it->second);
  inflight_.erase(it);

  ServedRequest sr;
  sr.id = meta->internal_id;
  sr.tenant = meta->lane;
  sr.row = meta->row;
  sr.replica = replica;
  sr.arrival_time = meta->submit_time;
  sr.dispatch_time = meta->dispatch_time;
  sr.admit_time = res.admit_time;
  sr.first_token_time = res.first_token_time;
  sr.finish_time = res.finish_time;
  sr.prompt_tokens = res.prompt_tokens;
  sr.cached_tokens = res.cached_tokens;
  sr.output_tokens = res.output_tokens;
  sr.priority = meta->priority;
  sr.preemptions = res.preemptions;
  sr.recomputed_tokens = res.recomputed_tokens;
  record(sr, meta->done);

  if (meta->entry) {
    MemoEntry& entry = *meta->entry;
    entry.done = true;
    entry.leader = res;
    entry.leader_replica = replica;
    ++dedup_.leaders;
    // Fan the completion out to everyone parked on this leader.
    std::vector<std::uint64_t> waiters = std::move(entry.waiters);
    entry.waiters.clear();
    for (std::uint64_t wid : waiters) {
      auto wit = waiting_.find(wid);
      if (wit == waiting_.end())
        throw std::logic_error("QueryClient: parked follower lost");
      std::unique_ptr<Meta> w = std::move(wit->second);
      waiting_.erase(wit);
      complete_from_memo(std::move(*w), entry);
    }
  }
}

void QueryClient::complete_from_memo(Meta meta, const MemoEntry& entry) {
  // The answer becomes available the instant the leader finished (parked
  // follower) or the instant this duplicate was dispatched (replay of an
  // already-finished leader) — no prefill, no decode, no cache traffic.
  const double t = std::max(meta.dispatch_time, entry.leader.finish_time);
  ServedRequest sr;
  sr.id = meta.internal_id;
  sr.tenant = meta.lane;
  sr.row = meta.row;
  sr.replica = entry.leader_replica;
  sr.arrival_time = meta.submit_time;
  sr.dispatch_time = meta.dispatch_time;
  sr.admit_time = t;
  sr.first_token_time = t;
  sr.finish_time = t;
  sr.prompt_tokens = meta.prompt_tokens;
  sr.cached_tokens = 0;  // memo savings are NOT prefix hits
  sr.output_tokens = entry.leader.output_tokens;
  sr.deduped = true;
  sr.priority = meta.priority;  // the follower's own lane class

  ++dedup_.hits;
  dedup_.saved_prompt_tokens += meta.prompt_tokens;
  dedup_.saved_output_tokens += entry.leader.output_tokens;
  record(sr, meta.done);
}

void QueryClient::run() {
  obs::SampleClock sampler(
      options_.trace.sampling() ? options_.trace.timeseries : nullptr,
      options_.trace.sample_interval_seconds);
  while (!heap_.empty() || fleet_.any_work()) {
    // 0. Advance the merged clock to the execution frontier.
    now_ = fleet_.frontier(now_);
    if (sampler.due(now_)) {
      fleet_.sample_gauges(*sampler.series(), now_);
      sampler.advance_past(now_);
    }
    // 1. Process every submission whose timestamp has passed.
    while (!heap_.empty() && heap_.front().time <= now_) {
      std::pop_heap(heap_.begin(), heap_.end(), SubmissionAfter{});
      Submission s = std::move(heap_.back());
      heap_.pop_back();
      process(std::move(s));
    }
    // 2. Execute: step the busy replica with the earliest clock.
    if (fleet_.any_work()) {
      ReplicaFleet::StepResult st = fleet_.step();
      for (const llm::RequestResult& res : st.completed)
        on_engine_complete(res, st.replica);
      continue;
    }
    // 3. Everything idle: jump to the next submission.
    if (!heap_.empty()) now_ = std::max(now_, heap_.front().time);
  }
  if (!waiting_.empty())
    throw std::logic_error(
        "QueryClient: followers parked with no leader in flight");
}

OnlineRunResult QueryClient::result() const {
  OnlineRunResult out;
  out.requests = requests_;
  out.latency = summarize_latency(requests_, options_.ttft_slo_seconds);
  out.per_class = summarize_by_class(requests_, options_.ttft_slo_seconds);
  out.replicas = fleet_.replica_metrics();
  out.engine = aggregate_replica_engines(out.replicas);
  out.load_imbalance = fleet_.load_imbalance();
  out.per_query = lanes_;
  out.dedup = dedup_;
  // Per-lane latency + per-tenant counts from the completion log.
  std::vector<std::vector<ServedRequest>> by_lane(lanes_.size());
  for (const ServedRequest& sr : requests_) by_lane[sr.tenant].push_back(sr);
  out.per_tenant.assign(lanes_.size(), 0);
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    out.per_query[l].latency =
        summarize_latency(by_lane[l], options_.ttft_slo_seconds);
    out.per_tenant[l] = by_lane[l].size();
  }
  return out;
}

// ---- Query-over-serving driver. ----

namespace {

/// One query's lifecycle on the shared client: submit stage 1, collect
/// completions keyed by row id, apply the relational epilogue, submit
/// stage 2 (multi-LLM) from inside the event loop, finalize metrics.
class ServedQuery {
 public:
  ServedQuery(QueryClient& client, const ServedQuerySpec& qs)
      : client_(client),
        qs_(qs),
        session_(client.open_session(qs.query->id, qs.priority)) {
    result_.query_id = qs.query->id;
    last_finish_ = qs.start_time;
    submit_stage(qs.query->stage1, qs.dataset->table,
                 qs.dataset->truth_for(qs.query->stage1.truth_key),
                 qs.start_time);
  }

  query::QueryRunResult take_result() {
    if (stage_.remaining != 0)
      throw std::logic_error("ServedQuery: stage still has rows in flight");
    result_.total_seconds = last_finish_ - qs_.start_time;
    return std::move(result_);
  }

 private:
  struct StageState {
    std::vector<std::string> answers;  // per row of the stage table
    std::vector<bool> seen;            // row completed (exactly-once check)
    std::size_t remaining = 0;
    query::StageMetrics metrics;
    double t0 = 0.0;
    double last_finish = 0.0;
  };

  void submit_stage(const data::StageSpec& stage, const table::Table& t,
                    const std::vector<std::string>& truth, double t0) {
    query::StagePrep prep = query::prepare_stage(
        t, qs_.dataset->fds, *qs_.query, stage, truth,
        qs_.dataset->key_field, qs_.config);
    stage_ = StageState{};
    stage_.answers.assign(prep.table.num_rows(), std::string());
    stage_.seen.assign(prep.table.num_rows(), false);
    stage_.remaining = prep.ops.requests.size();
    stage_.metrics.rows = prep.table.num_rows();
    stage_.metrics.solver_seconds = prep.plan.solver_seconds;
    stage_.t0 = t0;
    stage_.last_finish = t0;
    result_.solver_seconds += prep.plan.solver_seconds;
    if (stage_.remaining == 0) {  // empty stage: finalize immediately
      finish_stage();
      return;
    }
    // Hand the precomputed per-row answers to the completion path: the
    // stage's answer vector is filled as rows complete, which is what
    // makes "every row completes exactly once" an answer-level property.
    answers_by_row_ = std::move(prep.ops.answers);
    for (std::size_t i = 0; i < prep.ops.requests.size(); ++i) {
      const double ts =
          t0 + static_cast<double>(i) * qs_.request_interval;
      session_.submit(ts, std::move(prep.ops.requests[i]),
                      [this](const ServedRequest& sr) { on_row(sr); });
    }
  }

  void on_row(const ServedRequest& sr) {
    StageState& st = stage_;
    if (sr.row >= st.seen.size() || st.seen[sr.row])
      throw std::logic_error(
          "ServedQuery: duplicate or out-of-range row completion");
    st.seen[sr.row] = true;
    st.answers[sr.row] = answers_by_row_[sr.row];
    if (sr.deduped) {
      ++st.metrics.dedup_hits;
    } else {
      st.metrics.engine.prompt_tokens += sr.prompt_tokens;
      st.metrics.engine.cached_prompt_tokens += sr.cached_tokens;
      st.metrics.engine.computed_prompt_tokens +=
          sr.prompt_tokens - sr.cached_tokens;
      st.metrics.engine.output_tokens += sr.output_tokens;
    }
    st.last_finish = std::max(st.last_finish, sr.finish_time);
    if (--st.remaining == 0) finish_stage();
  }

  void finish_stage() {
    StageState& st = stage_;
    st.metrics.engine.total_seconds = st.last_finish - st.t0;
    st.metrics.token_phr = st.metrics.engine.prompt_cache_hit_rate();
    last_finish_ = std::max(last_finish_, st.last_finish);
    result_.stages.push_back(st.metrics);

    if (result_.stages.size() == 1) {
      result_.answers = st.answers;
      const std::vector<std::size_t> selected = query::stage1_epilogue(
          result_, *qs_.query, *qs_.dataset, st.answers);
      if (!selected.empty() && qs_.query->stage2) {
        stage2_input_ = query::make_stage2_input(*qs_.dataset,
                                                 *qs_.query->stage2, selected);
        submit_stage(*qs_.query->stage2, stage2_input_.table,
                     stage2_input_.truth, client_.now());
      }
    }
  }

  QueryClient& client_;
  ServedQuerySpec qs_;
  QuerySession& session_;
  query::QueryRunResult result_;
  StageState stage_;
  std::vector<std::string> answers_by_row_;  // task-model answers, per row
  query::Stage2Input stage2_input_;
  double last_finish_ = 0.0;
};

}  // namespace

FleetConfig fleet_from_exec(const query::ExecConfig& config) {
  FleetConfig f;
  f.engine = config.engine;
  f.engine.cache_enabled = config.cache_enabled;
  f.model = config.model;
  f.gpu = config.gpu;
  f.n_replicas = 1;
  return f;
}

ServedQueriesResult run_queries_served(
    const std::vector<ServedQuerySpec>& queries, const FleetConfig& fleet,
    QueryClient::Options options) {
  for (const ServedQuerySpec& q : queries)
    if (!q.dataset || !q.query)
      throw std::invalid_argument(
          "run_queries_served: dataset and query must be set");

  QueryClient client(fleet, options);
  std::vector<std::unique_ptr<ServedQuery>> live;
  live.reserve(queries.size());
  for (const ServedQuerySpec& q : queries)
    live.push_back(std::make_unique<ServedQuery>(client, q));
  client.run();

  ServedQueriesResult out;
  out.queries.reserve(queries.size());
  for (auto& q : live) out.queries.push_back(q->take_result());
  out.serving = client.result();
  return out;
}

}  // namespace llmq::serve
