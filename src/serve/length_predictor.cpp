#include "serve/length_predictor.hpp"

namespace llmq::serve {

void LengthPredictor::observe(std::uint32_t tenant,
                              std::size_t output_tokens) {
  State& s = per_tenant_[tenant];
  if (s.n == 0) {
    s.mean = opt_.initial_estimate;
    s.abs_err = 0.0;
  }
  const double x = static_cast<double>(output_tokens);
  const double err = x > s.mean ? x - s.mean : s.mean - x;
  s.abs_err += opt_.ewma_alpha * (err - s.abs_err);
  s.mean += opt_.ewma_alpha * (x - s.mean);
  ++s.n;
}

double LengthPredictor::predict(std::uint32_t tenant) const {
  const auto it = per_tenant_.find(tenant);
  const double mean =
      it == per_tenant_.end() ? opt_.initial_estimate : it->second.mean;
  const double pad = it == per_tenant_.end() ? 0.0 : it->second.abs_err;
  const double p = mean + opt_.mispredict_penalty * pad;
  return p < 1.0 ? 1.0 : p;
}

std::size_t LengthPredictor::predict_tokens(std::uint32_t tenant) const {
  if (!opt_.enabled) return 0;
  const double p = predict(tenant) + 0.5;
  return p < 1.0 ? 1 : static_cast<std::size_t>(p);
}

std::size_t LengthPredictor::observations(std::uint32_t tenant) const {
  const auto it = per_tenant_.find(tenant);
  return it == per_tenant_.end() ? 0 : it->second.n;
}

}  // namespace llmq::serve
