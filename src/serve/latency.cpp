#include "serve/latency.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace llmq::serve {

LatencySummary summarize_latency(const std::vector<ServedRequest>& requests,
                                 double ttft_slo_seconds) {
  LatencySummary s;
  s.ttft_slo = ttft_slo_seconds;
  if (requests.empty()) return s;
  s.count = requests.size();

  std::vector<double> ttft, queue, e2e, itl;
  ttft.reserve(requests.size());
  queue.reserve(requests.size());
  e2e.reserve(requests.size());
  itl.reserve(requests.size());
  double first_arrival = requests.front().arrival_time;
  double last_finish = requests.front().finish_time;
  std::size_t within_slo = 0;
  for (const auto& r : requests) {
    const double t = r.ttft();  // derive once; it feeds three consumers
    ttft.push_back(t);
    queue.push_back(r.queue_delay());
    e2e.push_back(r.e2e_latency());
    // Single-token completions have no inter-token gap; keep them out of
    // the ITL sample rather than diluting it with zeros.
    if (r.output_tokens > 1) itl.push_back(r.mean_itl());
    first_arrival = std::min(first_arrival, r.arrival_time);
    last_finish = std::max(last_finish, r.finish_time);
    if (ttft_slo_seconds <= 0.0 || t <= ttft_slo_seconds) ++within_slo;
  }

  // Means first — summation runs in arrival order, exactly as it did when
  // util::mean saw the unsorted vectors. Then one sort per sample and all
  // percentiles read off the sorted data: same values as the old
  // sort-a-copy-per-percentile, at a fourteenth of the sorting work.
  s.mean_ttft = util::mean(ttft);
  s.mean_queue_delay = util::mean(queue);
  if (!itl.empty()) s.mean_itl = util::mean(itl);
  std::sort(ttft.begin(), ttft.end());
  std::sort(queue.begin(), queue.end());
  std::sort(e2e.begin(), e2e.end());
  std::sort(itl.begin(), itl.end());
  s.p50_ttft = util::percentile_sorted(ttft, 50.0);
  s.p90_ttft = util::percentile_sorted(ttft, 90.0);
  s.p95_ttft = util::percentile_sorted(ttft, 95.0);
  s.p99_ttft = util::percentile_sorted(ttft, 99.0);
  s.p90_queue_delay = util::percentile_sorted(queue, 90.0);
  s.p99_queue_delay = util::percentile_sorted(queue, 99.0);
  if (!itl.empty()) {
    s.p50_itl = util::percentile_sorted(itl, 50.0);
    s.p90_itl = util::percentile_sorted(itl, 90.0);
    s.p99_itl = util::percentile_sorted(itl, 99.0);
  }
  s.p50_e2e = util::percentile_sorted(e2e, 50.0);
  s.p99_e2e = util::percentile_sorted(e2e, 99.0);
  s.makespan = last_finish - first_arrival;
  if (s.makespan > 0.0) {
    s.throughput_rps = static_cast<double>(s.count) / s.makespan;
    s.goodput_rps = static_cast<double>(within_slo) / s.makespan;
  }
  return s;
}

std::vector<PriorityClassMetrics> summarize_by_class(
    const std::vector<ServedRequest>& requests, double ttft_slo_seconds) {
  std::vector<std::vector<ServedRequest>> by_class(llm::kNumPriorityClasses);
  for (const ServedRequest& r : requests)
    by_class[static_cast<std::size_t>(r.priority)].push_back(r);

  std::vector<PriorityClassMetrics> out(llm::kNumPriorityClasses);
  for (std::size_t c = 0; c < llm::kNumPriorityClasses; ++c) {
    PriorityClassMetrics& m = out[c];
    m.priority = static_cast<llm::PriorityClass>(c);
    m.requests = by_class[c].size();
    for (const ServedRequest& r : by_class[c]) {
      m.preemptions += r.preemptions;
      m.recomputed_tokens += r.recomputed_tokens;
    }
    m.latency = summarize_latency(by_class[c], ttft_slo_seconds);
  }
  return out;
}

}  // namespace llmq::serve
