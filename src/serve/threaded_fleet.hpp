#pragma once
// Real-threads fleet runtime: a capped pool of worker threads (by default
// hardware_concurrency - 1, at most one per replica) driven in
// deterministic epochs, bit-identical to the virtual-clock oracle.
//
// ReplicaFleet (fleet.hpp) interleaves N replica sessions on one OS
// thread by always stepping the busy replica with the earliest virtual
// clock. ThreadedFleet runs the same N sessions on N worker threads and
// recovers the exact same execution — every result field, ledger, trace
// byte, and gauge row — from the following protocol:
//
//   Ownership. Each worker thread exclusively owns its replicas'
//   ServingEngine, EngineSession, and TraceLog between barriers (a worker
//   owns every replica index congruent to it modulo the thread count and
//   services them sequentially — multiplexing changes wall-clock
//   parallelism only, never the per-replica execution). The
//   driver thread owns the scheduler, router, arrival stream, sample
//   clock, result assembly, and per-replica mirrors of each session's
//   (clock, busy, outstanding-tokens) state. The PrefixCache is the one
//   shared structure: workers mutate it inside step(), the driver probes
//   it (const peek) while routing — which is why the threaded fleet
//   builds its caches with lock striping (cache/prefix_cache.hpp).
//
//   Queues. Per replica, a bounded MPSC inbox of {Submit, RunUntil,
//   Stop} messages and an outbox of epoch reports (util/mpsc_queue.hpp).
//   Inbox FIFO order is load-bearing: Submits dispatched at a barrier
//   precede the RunUntil that opens the next epoch, so a worker admits
//   exactly what the sequential loop would have admitted before stepping.
//
//   Epochs. The driver computes the next virtual time T at which
//   anything observable can happen — a window deadline, the arrival that
//   fills a row-bound window, a fresh deadline started by an arrival
//   entering an empty buffer, or a gauge-sampling boundary — and tells
//   every worker to RunUntil(T). A worker steps while it has work and
//   its clock is < T, then reports. This reproduces the sequential
//   argmin-clock rule exactly: under that rule a replica at clock >= T is
//   never stepped while any busy replica is < T, so by the first frontier
//   >= T every busy replica has been stepped precisely until its clock
//   first reached >= T — which is the worker's loop condition. Arrivals
//   between barriers are fed lazily at the next barrier; that is safe
//   because buffering an arrival is unobservable until it changes window
//   due-ness, and every due-change time is an epoch cut.
//
//   Merge. Steps are globally ordered by (pre-step clock, replica index,
//   per-replica order) — the exact order the argmin rule with its
//   lowest-index tiebreak produces — so completions, result vectors, and
//   per-class ledgers assemble identically. Trace canonicality uses the
//   same order plus an ordered slot merger (obs/trace_merge.hpp): driver
//   events flow straight through, worker Enqueue events fill
//   placeholder slots reserved at dispatch, and merged step spans are
//   appended at each barrier.
//
// The virtual clock stays the oracle: simulated metrics never come from
// wall time, so the threaded runtime adds real parallelism (benchmarked
// wall-clock throughput in bench_threaded_fleet) without perturbing a
// single simulated number — the equivalence is property-tested across
// replicas x preemption x chunking x seeds in tests/threaded/.

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "llm/engine.hpp"
#include "llm/engine_session.hpp"
#include "obs/trace_merge.hpp"
#include "serve/online.hpp"
#include "util/mpsc_queue.hpp"

namespace llmq::serve {

struct ThreadedFleetOptions {
  /// Lock stripes for each replica's PrefixCache (0 = unstriped). The
  /// default exercises the striped concurrent cache; striped == unstriped
  /// behavior is pinned separately in tests/cache.
  std::size_t cache_lock_stripes = 8;
  /// Bounded capacity of each worker's admission/command inbox. Overflow
  /// only blocks the driver momentarily — workers drain continuously.
  std::size_t inbox_capacity = 1024;
  /// Worker-thread ceiling; 0 = one less than
  /// std::thread::hardware_concurrency() (floor 1), leaving a core for
  /// the driver. When the fleet has more replicas than workers, replica i
  /// is owned by worker i % T and its slots are serviced sequentially in
  /// inbox order — pure multiplexing, so every simulated number stays
  /// bit-identical to the one-thread-per-replica runtime (pinned in
  /// tests/threaded/).
  std::size_t max_threads = 0;
};

class ThreadedFleet {
 public:
  /// Spawns min(n_replicas, max_threads) worker threads (parked until
  /// messages arrive); replicas beyond the thread cap are multiplexed
  /// onto the existing workers (ThreadedFleetOptions::max_threads).
  /// Throws std::invalid_argument when config.n_replicas == 0.
  ThreadedFleet(const FleetConfig& config, ThreadedFleetOptions options = {});
  ~ThreadedFleet();

  ThreadedFleet(const ThreadedFleet&) = delete;
  ThreadedFleet& operator=(const ThreadedFleet&) = delete;

  std::size_t n_replicas() const { return replicas_.size(); }

  /// Bind tracing. Driver-only object; call before the first dispatch.
  /// Each replica session emits into its own private TraceLog on track r;
  /// the driver merges at barriers. A null/disabled merger is ignored.
  void set_trace(obs::OrderedTraceMerger* merger);

  /// Route `req` and enqueue it to the chosen replica's worker. Mirrors
  /// ReplicaFleet::dispatch bit-for-bit using the driver-side session
  /// mirrors (exact between barriers because only dispatches change
  /// them). Barrier-context only. Returns the chosen replica.
  std::size_t dispatch(llm::Request req, std::uint32_t tenant, double now);

  bool any_work() const;

  /// Merged-clock frontier rule over the driver-side clock mirrors;
  /// identical to ReplicaFleet::frontier.
  double frontier(double now) const;

  /// Run one epoch: every worker advances until its session clock
  /// reaches `t_limit` or it runs dry (pass +infinity to drain), then
  /// the driver blocks on all reports (the barrier), merges step records
  /// into virtual-time order, fills trace placeholders, and refreshes
  /// the session mirrors. Returns completions in oracle order.
  std::vector<llm::RequestResult> run_epoch(double t_limit);

  /// Append one gauge row per replica at merged time `now`. Barrier
  /// context only (reads worker-owned sessions while they are parked).
  void sample_gauges(obs::TimeSeries& ts, double now) const;

  /// Per-replica attribution with final engine metrics. Barrier context.
  std::vector<ReplicaMetrics> replica_metrics() const;

  /// Mean over routing decisions of max/mean outstanding prompt tokens.
  double load_imbalance() const;

  /// Stop and join every worker. Idempotent; the destructor calls it.
  void shutdown();

  /// Elasticity observers, mirror of ReplicaFleet's (driver state).
  std::size_t active_replicas() const;
  bool replica_active(std::size_t r) const { return active_[r] != 0; }
  bool replica_draining(std::size_t r) const { return draining_[r] != 0; }
  std::size_t pending_migrations() const { return pending_.size(); }

 private:
  struct Replica;

  struct WorkerMsg {
    enum class Kind { Submit, Run, Stop };
    Kind kind = Kind::Stop;
    Replica* rep = nullptr;   // target replica (null for Stop)
    std::size_t replica = 0;  // its fleet index (EpochReport tag)
    llm::Request req;         // Submit payload
    double time = 0.0;        // Submit: dispatch instant; Run: epoch limit
  };

  /// One worker-side action (a Submit admission or one session step),
  /// with its private-TraceLog event span and any completions.
  struct StepRec {
    bool is_submit = false;
    double pre_clock = 0.0;  // session clock before the step (merge key)
    std::uint64_t id = 0;    // Submit: request id (trace placeholder key)
    std::size_t trace_begin = 0;
    std::size_t trace_end = 0;
    std::vector<llm::RequestResult> completed;
  };

  struct EpochReport {
    std::size_t replica = 0;  // fleet index (WorkerMsg::replica echo)
    std::vector<StepRec> recs;
    double clock = 0.0;
    bool has_work = false;
    std::size_t outstanding = 0;
  };

  struct Replica {
    llm::ServingEngine engine;
    cache::PrefixCache cache;
    llm::EngineSession session;
    obs::TraceLog local_trace;
    std::vector<StepRec> recs;  // owner-worker accumulation, per epoch

    Replica(const FleetConfig& config, const ThreadedFleetOptions& options)
        : engine(llm::CostModel(config.model, config.gpu), config.engine),
          cache(engine.make_session_cache(options.cache_lock_stripes)),
          session(engine, cache) {}
  };

  /// One worker thread multiplexing the replica slots it owns: every
  /// message names its target replica, so a single inbox both parks the
  /// worker and serializes its slots in driver push order.
  struct Worker {
    util::MpscQueue<WorkerMsg> inbox;
    util::MpscQueue<EpochReport> outbox;
    std::vector<Replica*> owned;  // ascending replica index
    std::thread thread;

    Worker(std::size_t inbox_capacity, std::size_t outbox_capacity)
        : inbox(inbox_capacity), outbox(outbox_capacity) {}
  };

  static void worker_main(Worker& w);

  Worker& owner(std::size_t replica) {
    return *workers_[replica % workers_.size()];
  }
  void maybe_scale(double now);
  void complete_migrations(double now);

  /// Mirror of ReplicaFleet::PendingMigration for the threaded driver
  /// (cache ops run on the driver thread; the striped caches make them
  /// safe against concurrent worker probes).
  struct PendingMigration {
    std::size_t donor = 0;
    std::size_t recipient = 0;
    cache::PrefixCache::MigrationBatch batch;
    double land_time = 0.0;
  };

  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<Worker>> workers_;
  Router router_;
  obs::OrderedTraceMerger* merger_ = nullptr;
  std::vector<ReplicaMetrics> counters_;  // engine filled by replica_metrics
  std::vector<Router::ReplicaView> views_;  // reused per-dispatch buffer
  // Driver-side mirrors of worker session state: refreshed from reports
  // at each barrier, advanced by dispatch bookkeeping between barriers —
  // exact at all times because nothing else runs between barriers.
  std::vector<double> clock_view_;
  std::vector<char> busy_view_;
  std::vector<std::size_t> outstanding_view_;
  ElasticityConfig elastic_;
  std::size_t block_size_ = 16;
  std::vector<char> active_;
  std::vector<char> draining_;
  std::vector<PendingMigration> pending_;
  double last_scale_ = -1.0e300;  // cooldown anchor
  double imbalance_sum_ = 0.0;
  std::size_t imbalance_samples_ = 0;
  bool stopped_ = false;
};

/// run_online semantics on the real-threads runtime. Produces a
/// bit-identical OnlineRunResult to run_online(t, fds, arrivals, config)
/// — including requests, latency/per-class summaries, engine + cache
/// ledgers, PHC, and load imbalance; solve_seconds is planner wall clock
/// and the one legitimately differing field. Property-pinned in
/// tests/threaded/.
OnlineRunResult run_online_threaded(const table::Table& t,
                                    const table::FdSet& fds,
                                    const std::vector<Arrival>& arrivals,
                                    const OnlineConfig& config,
                                    ThreadedFleetOptions options = {});

}  // namespace llmq::serve
