#include "pricing/api_simulator.hpp"

#include "util/rng.hpp"

namespace llmq::pricing {

AutoCacheApi::AutoCacheApi(PriceSheet sheet)
    : sheet_(std::move(sheet)), tree_(sheet_.cache_increment_tokens) {}

ApiRequestCharge AutoCacheApi::submit(
    std::span<const tokenizer::TokenId> prompt, std::uint64_t output_tokens) {
  ++clock_;
  ApiRequestCharge out;
  const auto match = tree_.match(prompt);
  std::size_t cached = match.matched_tokens;
  // Below the provider minimum nothing is billed as cached.
  if (cached < sheet_.min_prefix_tokens) cached = 0;
  tree_.touch(match.path, clock_);
  tree_.insert(prompt, clock_);

  out.usage.cached_input = cached;
  out.usage.uncached_input = prompt.size() - cached;
  out.usage.output = output_tokens;
  out.cached_tokens = cached;

  total_ += out.usage;
  prompt_tokens_ += prompt.size();
  hit_tokens_ += cached;
  return out;
}

double AutoCacheApi::prompt_hit_rate() const {
  return prompt_tokens_ ? static_cast<double>(hit_tokens_) /
                              static_cast<double>(prompt_tokens_)
                        : 0.0;
}

BreakpointCacheApi::BreakpointCacheApi(PriceSheet sheet)
    : sheet_(std::move(sheet)) {}

ApiRequestCharge BreakpointCacheApi::submit(
    std::span<const tokenizer::TokenId> prompt, std::uint64_t output_tokens) {
  ApiRequestCharge out;
  const std::size_t bp = sheet_.min_prefix_tokens;
  if (prompt.size() < bp) {
    // Too short to cache at all: plain input pricing.
    out.usage.uncached_input = prompt.size();
  } else {
    const std::uint64_t key =
        util::hash64(prompt.data(), bp * sizeof(tokenizer::TokenId));
    if (written_prefixes_.count(key)) {
      out.usage.cached_input = bp;
      out.usage.uncached_input = prompt.size() - bp;
      hit_tokens_ += bp;
    } else {
      written_prefixes_.insert(key);
      out.usage.cache_write = bp;
      out.usage.uncached_input = prompt.size() - bp;
    }
  }
  out.usage.output = output_tokens;
  out.cached_tokens = out.usage.cached_input;
  total_ += out.usage;
  prompt_tokens_ += prompt.size();
  return out;
}

double BreakpointCacheApi::prompt_hit_rate() const {
  return prompt_tokens_ ? static_cast<double>(hit_tokens_) /
                              static_cast<double>(prompt_tokens_)
                        : 0.0;
}

}  // namespace llmq::pricing
