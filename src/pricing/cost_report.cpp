#include "pricing/cost_report.hpp"

namespace llmq::pricing {

StreamCostReport price_stream_auto(const PriceSheet& sheet,
                                   const std::vector<PricedRequest>& stream) {
  AutoCacheApi api(sheet);
  for (const auto& r : stream) api.submit(r.prompt, r.output_tokens);
  StreamCostReport out;
  out.cost_usd = api.total_cost();
  out.prompt_hit_rate = api.prompt_hit_rate();
  out.usage = api.total_usage();
  return out;
}

StreamCostReport price_stream_breakpoint(
    const PriceSheet& sheet, const std::vector<PricedRequest>& stream) {
  BreakpointCacheApi api(sheet);
  for (const auto& r : stream) api.submit(r.prompt, r.output_tokens);
  StreamCostReport out;
  out.cost_usd = api.total_cost();
  out.prompt_hit_rate = api.prompt_hit_rate();
  out.usage = api.total_usage();
  return out;
}

StreamCostReport price_stream_uncached(
    const PriceSheet& sheet, const std::vector<PricedRequest>& stream) {
  StreamCostReport out;
  for (const auto& r : stream) {
    out.usage.uncached_input += r.prompt.size();
    out.usage.output += r.output_tokens;
  }
  out.cost_usd = cost_usd(sheet, out.usage);
  return out;
}

}  // namespace llmq::pricing
