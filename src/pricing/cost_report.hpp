#pragma once
// Cost reporting over request streams.
//
// Glue for the Table 3 / Table 4 benches: run an ordered request stream
// through a provider cache simulator and summarize dollars and hit rates.

#include <vector>

#include "pricing/api_simulator.hpp"
#include "tokenizer/tokenizer.hpp"

namespace llmq::pricing {

struct StreamCostReport {
  double cost_usd = 0.0;
  double prompt_hit_rate = 0.0;
  TokenUsage usage;
};

struct PricedRequest {
  tokenizer::TokenSeq prompt;
  std::uint64_t output_tokens = 0;
};

/// Price a request stream under OpenAI-style automatic caching.
StreamCostReport price_stream_auto(const PriceSheet& sheet,
                                   const std::vector<PricedRequest>& stream);

/// Price a request stream under Anthropic-style breakpoint caching.
StreamCostReport price_stream_breakpoint(
    const PriceSheet& sheet, const std::vector<PricedRequest>& stream);

/// Price a stream with caching ignored entirely (the no-cache reference).
StreamCostReport price_stream_uncached(const PriceSheet& sheet,
                                       const std::vector<PricedRequest>& stream);

}  // namespace llmq::pricing
