#pragma once
// Proprietary-API cache simulators (paper §6.3, Table 3).
//
// Two cache disciplines are modeled:
//  * OpenAI-style automatic caching: the provider transparently caches
//    prompt prefixes in 128-token increments; a request is only charged
//    the cached rate when its matched prefix reaches the 1024-token
//    minimum.
//  * Anthropic-style explicit caching: the client marks a breakpoint; per
//    the paper's conservative setup we mark exactly the first 1024 tokens
//    of each request. A request whose first-1024-token prefix was written
//    before reads it at 10% price; otherwise it writes it at 125% price.

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "cache/radix_tree.hpp"
#include "pricing/price_sheet.hpp"
#include "tokenizer/tokenizer.hpp"

namespace llmq::pricing {

struct ApiRequestCharge {
  TokenUsage usage;        // token-level charge classes for this request
  std::uint64_t cached_tokens = 0;  // convenience: == usage.cached_input
};

/// Automatic prefix caching (OpenAI).
class AutoCacheApi {
 public:
  explicit AutoCacheApi(PriceSheet sheet);

  /// Submit one request; returns its charge classes and updates the cache.
  ApiRequestCharge submit(std::span<const tokenizer::TokenId> prompt,
                          std::uint64_t output_tokens);

  const PriceSheet& sheet() const { return sheet_; }
  const TokenUsage& total_usage() const { return total_; }
  double total_cost() const { return cost_usd(sheet_, total_); }
  double prompt_hit_rate() const;

 private:
  PriceSheet sheet_;
  cache::RadixTree tree_;
  TokenUsage total_;
  std::uint64_t clock_ = 0;
  std::uint64_t prompt_tokens_ = 0;
  std::uint64_t hit_tokens_ = 0;
};

/// Explicit breakpoint caching (Anthropic beta prompt caching), with the
/// paper's conservative policy: cache exactly the first
/// `sheet.min_prefix_tokens` tokens of every request.
class BreakpointCacheApi {
 public:
  explicit BreakpointCacheApi(PriceSheet sheet);

  ApiRequestCharge submit(std::span<const tokenizer::TokenId> prompt,
                          std::uint64_t output_tokens);

  const PriceSheet& sheet() const { return sheet_; }
  const TokenUsage& total_usage() const { return total_; }
  double total_cost() const { return cost_usd(sheet_, total_); }
  double prompt_hit_rate() const;

 private:
  PriceSheet sheet_;
  std::unordered_set<std::uint64_t> written_prefixes_;
  TokenUsage total_;
  std::uint64_t prompt_tokens_ = 0;
  std::uint64_t hit_tokens_ = 0;
};

}  // namespace llmq::pricing
