#include "pricing/price_sheet.hpp"

namespace llmq::pricing {

PriceSheet openai_gpt4o_mini() {
  PriceSheet p;
  p.provider = "OpenAI";
  p.model = "GPT-4o-mini";
  p.input_per_mtok = 0.15;
  p.cached_read_per_mtok = 0.075;
  p.cache_write_per_mtok = 0.15;  // no write premium
  p.output_per_mtok = 0.60;
  p.min_prefix_tokens = 1024;
  p.cache_increment_tokens = 128;
  p.explicit_cache_control = false;
  return p;
}

PriceSheet anthropic_claude35_sonnet() {
  PriceSheet p;
  p.provider = "Anthropic";
  p.model = "Claude 3.5 Sonnet";
  p.input_per_mtok = 3.0;
  p.cached_read_per_mtok = 0.30;
  p.cache_write_per_mtok = 3.75;
  p.output_per_mtok = 15.0;
  p.min_prefix_tokens = 1024;
  p.cache_increment_tokens = 1;  // breakpoints are user-placed
  p.explicit_cache_control = true;
  return p;
}

TokenUsage& TokenUsage::operator+=(const TokenUsage& o) {
  uncached_input += o.uncached_input;
  cached_input += o.cached_input;
  cache_write += o.cache_write;
  output += o.output;
  return *this;
}

double cost_usd(const PriceSheet& sheet, const TokenUsage& usage) {
  const double mtok = 1e6;
  // cache_write tokens are part of uncached_input accounting-wise but
  // charged at the write rate; uncached_input excludes them by contract.
  return static_cast<double>(usage.uncached_input) / mtok * sheet.input_per_mtok +
         static_cast<double>(usage.cached_input) / mtok * sheet.cached_read_per_mtok +
         static_cast<double>(usage.cache_write) / mtok * sheet.cache_write_per_mtok +
         static_cast<double>(usage.output) / mtok * sheet.output_per_mtok;
}

double input_cost_fraction(const PriceSheet& sheet, double phr) {
  const double cached_ratio = sheet.cached_read_per_mtok / sheet.input_per_mtok;
  return (1.0 - phr) + phr * cached_ratio;
}

double estimated_savings(const PriceSheet& sheet, double phr_original,
                         double phr_ggr) {
  return 1.0 - input_cost_fraction(sheet, phr_ggr) /
                   input_cost_fraction(sheet, phr_original);
}

}  // namespace llmq::pricing
