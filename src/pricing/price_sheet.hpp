#pragma once
// Provider pricing models (paper §6.3).
//
// OpenAI: automatic prefix caching, cached input tokens at 50% of the base
// input price, 1024-token minimum cacheable prefix, 128-token increments.
// Anthropic: manual cache breakpoints; cache writes cost 25% *more* than
// base input, cache reads cost 10% of base; same 1024-token minimum.
// Prices are per million tokens, matching the paper's footnotes 2-3.

#include <cstdint>
#include <string>

namespace llmq::pricing {

struct PriceSheet {
  std::string provider;
  std::string model;
  double input_per_mtok = 0.0;        // uncached input
  double cached_read_per_mtok = 0.0;  // cached input
  double cache_write_per_mtok = 0.0;  // written-to-cache input (Anthropic)
  double output_per_mtok = 0.0;
  std::size_t min_prefix_tokens = 1024;
  std::size_t cache_increment_tokens = 128;
  /// True when the user must mark cache breakpoints explicitly (Anthropic
  /// beta prompt caching); false for automatic prefix detection (OpenAI).
  bool explicit_cache_control = false;
};

/// GPT-4o-mini: $0.15/M input, $0.075/M cached, $0.60/M output.
PriceSheet openai_gpt4o_mini();
/// Claude 3.5 Sonnet: $3/M input, $3.75/M cache write, $0.30/M cache read,
/// $15/M output.
PriceSheet anthropic_claude35_sonnet();

struct TokenUsage {
  std::uint64_t uncached_input = 0;
  std::uint64_t cached_input = 0;
  std::uint64_t cache_write = 0;  // subset of input written at premium
  std::uint64_t output = 0;

  TokenUsage& operator+=(const TokenUsage& o);
};

/// Dollar cost of `usage` under `sheet`. Cache-write tokens are charged at
/// the write rate (when the sheet has one) *instead of* the base rate.
double cost_usd(const PriceSheet& sheet, const TokenUsage& usage);

/// Input-only cost ratio of a workload with prefix hit rate `phr` relative
/// to the same workload fully uncached (Table 4's estimation model:
/// assumes automatic caching at arbitrary lengths, ignores write premiums).
double input_cost_fraction(const PriceSheet& sheet, double phr);

/// Estimated savings of GGR over the original ordering given both hit
/// rates (Table 4): 1 - cost(phr_ggr) / cost(phr_original).
double estimated_savings(const PriceSheet& sheet, double phr_original,
                         double phr_ggr);

}  // namespace llmq::pricing
